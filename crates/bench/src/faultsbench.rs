//! The fault-harness benchmark, emitted as `BENCH_faults.json`.
//!
//! `dc_faults` promises that its injection points are *zero-cost when
//! disabled* — one relaxed load per check site — cheap enough to leave
//! compiled into the engine's hot paths (`DESIGN.md` §13). This tier holds
//! the harness to that promise, and measures the cost of the failure-path
//! door the points exist to exercise:
//!
//! * **disabled-injection overhead** — the batch engine runs a mixed
//!   adapter workload (every op crosses the `IntakeStall` check, every
//!   batch the two leader-panic checks, every link the `ArenaAlloc`
//!   check) in three modes: **baseline** (no schedule installed),
//!   **armed** (an empty schedule installed — every check pays the slow
//!   path but nothing ever fires) and **disabled** (schedule uninstalled
//!   again, the state a production binary is permanently in). The **gate**
//!   is the disabled cell's overhead versus baseline, computed exactly as
//!   in `BENCH_obs.json`: within each repeat cycle the three modes run
//!   back-to-back so common-mode noise cancels in the ratio, and the gate
//!   value is the minimum paired overhead across cycles — only a
//!   regression visible in *every* cycle trips it. Ceiling:
//!   [`GATE_MAX_DISABLED_OVERHEAD_PERCENT`]. The armed cell is reported,
//!   not gated — arming is a diagnosis session, it is allowed to cost
//!   something.
//!
//! * **recovery-from-poison latency** — a durable store is populated, its
//!   engine is poisoned by an injected leader panic
//!   ([`InjectionPoint::LeaderPanicBeforeApply`]), and the wall time of
//!   [`DurableConnectivity::rebuild`] — the typed door out of the poisoned
//!   state, close writer → recover from the log → fresh engine — is
//!   measured over `recovery_repeats` poison/rebuild cycles (best and
//!   median reported). Not gated: the cell exists to track the trajectory
//!   of the recovery path, and as a release-mode smoke that the
//!   poison → rebuild → agree contract holds outside the unit tests.

use crate::report::{json_number, json_string};
use dc_durable::{DurableConnectivity, DurableOptions};
use dc_faults::{ChaosConfig, ChaosSchedule, InjectionPoint};
use dc_workloads::{presets, GeneratedWorkload, Op, Topology};
use dynconn::DynamicConnectivity;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Ceiling on the disabled-injection overhead versus baseline, in percent.
pub const GATE_MAX_DISABLED_OVERHEAD_PERCENT: f64 = 3.0;

/// Scenario parameters for the fault-harness benchmark.
#[derive(Clone, Debug)]
pub struct FaultsBenchConfig {
    /// Vertex budget for the power-law universe of the overhead workload.
    pub n: usize,
    /// Per-thread operation budget of the overhead workload.
    pub ops_per_thread: usize,
    /// Concurrent threads driving the engine's adapter doors.
    pub threads: usize,
    /// PRNG seed.
    pub seed: u64,
    /// Repeat cycles; best throughput per mode is kept and the gate takes
    /// the most favorable *paired* cycle (see module docs).
    pub repeats: usize,
    /// Acked chain edges written to the durable store before poisoning it.
    pub recovery_edges: usize,
    /// Poison → rebuild cycles measured for the recovery cell.
    pub recovery_repeats: usize,
}

impl FaultsBenchConfig {
    /// The tracked configuration (shrunk under `DC_BENCH_QUICK=1`, thread
    /// count overridable via `DC_BENCH_THREADS`).
    pub fn from_env() -> Self {
        let quick = std::env::var("DC_BENCH_QUICK")
            .map(|v| v != "0")
            .unwrap_or(false);
        let mut config = if quick {
            FaultsBenchConfig {
                n: 512,
                ops_per_thread: 4_000,
                threads: 4,
                seed: 0xFA07,
                repeats: 10,
                recovery_edges: 256,
                recovery_repeats: 3,
            }
        } else {
            FaultsBenchConfig {
                n: 4_096,
                ops_per_thread: 40_000,
                threads: 8,
                seed: 0xFA07,
                repeats: 12,
                recovery_edges: 2_048,
                recovery_repeats: 5,
            }
        };
        if let Ok(v) = std::env::var("DC_BENCH_THREADS") {
            if let Some(t) = v
                .split(',')
                .filter_map(|s| s.trim().parse::<usize>().ok())
                .max()
            {
                config.threads = t.max(1);
            }
        }
        config
    }
}

/// One measured injection-check mode.
#[derive(Clone, Debug)]
pub struct FaultModeCell {
    /// Mode name ("baseline", "armed", "disabled").
    pub mode: String,
    /// Operations per second (best of `repeats`).
    pub ops_per_sec: f64,
    /// Throughput lost versus baseline, in percent (negative = faster,
    /// i.e. noise).
    pub overhead_percent: f64,
}

/// The recovery-from-poison measurement.
#[derive(Clone, Debug, Default)]
pub struct RecoveryCell {
    /// Vertices in the poisoned store.
    pub vertices: usize,
    /// Acked (logged) edges at the moment of the poisoning panic.
    pub acked_edges: usize,
    /// Fastest poison → rebuilt wall time, milliseconds.
    pub rebuild_ms_best: f64,
    /// Median poison → rebuilt wall time, milliseconds.
    pub rebuild_ms_median: f64,
    /// Committed batches the rebuild replayed from the WAL tail.
    pub batches_replayed: u64,
    /// `covered_seq` of the checkpoint that seeded the rebuild (0 = whole
    /// log replayed); together with `batches_replayed` this accounts for
    /// every acked edge.
    pub checkpoint_seq: u64,
    /// Poison/rebuild cycles measured.
    pub repeats: usize,
}

/// The full fault-harness measurement, serialized as `BENCH_faults.json`.
#[derive(Clone, Debug, Default)]
pub struct FaultsBaseline {
    /// Short git revision.
    pub git_rev: String,
    /// The configuration the numbers were measured at.
    pub config: Option<FaultsBenchConfig>,
    /// The three mode cells, baseline first.
    pub modes: Vec<FaultModeCell>,
    /// The gate value: disabled-injection overhead versus baseline in
    /// percent, from the most favorable *paired* repeat cycle.
    pub disabled_overhead_percent: f64,
    /// Injection checks the armed runs actually crossed, per point — a
    /// smoke that the measured workload really exercises the check sites.
    pub armed_checks: Vec<(String, u64)>,
    /// The recovery-from-poison cell.
    pub recovery: RecoveryCell,
}

impl FaultsBaseline {
    /// Whether the disabled-overhead gate passes.
    pub fn gate_passes(&self) -> bool {
        self.disabled_overhead_percent <= GATE_MAX_DISABLED_OVERHEAD_PERCENT
    }
}

/// Preloads and runs the workload's phases across threads against the batch
/// engine's trait doors, returning ops/s over the phase execution (preload
/// excluded). The adapter path crosses every hot injection check: the
/// intake stall per op, the two leader-panic points per batch, the arena
/// point per link.
fn run_engine_workload(engine: &dc_batch::BatchEngine, workload: &GeneratedWorkload) -> f64 {
    for edge in &workload.preload {
        engine.add_edge(edge.u(), edge.v());
    }
    let mut operations = 0usize;
    let start = Instant::now();
    for phase in &workload.phases {
        operations += phase.total_operations();
        let start_flag = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let handles: Vec<_> = phase
                .per_thread
                .iter()
                .map(|ops| {
                    let start_flag = &start_flag;
                    scope.spawn(move || {
                        while !start_flag.load(Ordering::Acquire) {
                            std::hint::spin_loop();
                        }
                        for op in ops {
                            match *op {
                                Op::Add(u, v) => engine.add_edge(u, v),
                                Op::Remove(u, v) => engine.remove_edge(u, v),
                                Op::Query(u, v) => {
                                    std::hint::black_box(engine.connected(u, v));
                                }
                            }
                        }
                    })
                })
                .collect();
            start_flag.store(true, Ordering::Release);
            for handle in handles {
                handle.join().expect("faults bench worker panicked");
            }
        });
    }
    operations as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

/// The measurement order within a repeat: baseline while nothing is
/// installed, then armed, then disabled — so the disabled cell measures the
/// state a binary returns to after a chaos session (statics touched, branch
/// predictors trained on the flag).
const MODES: [&str; 3] = ["baseline", "armed", "disabled"];

/// An armed-but-inert schedule: every check takes the slow path, nothing
/// ever fires (zero faults planned at every point).
fn empty_schedule(seed: u64) -> Arc<ChaosSchedule> {
    Arc::new(ChaosSchedule::from_config(ChaosConfig {
        seed,
        faults_per_point: [0; InjectionPoint::COUNT],
        ..ChaosConfig::default()
    }))
}

/// One fault of `point`, scheduled on the very first injection check.
fn one_shot(point: InjectionPoint) -> Arc<ChaosSchedule> {
    let mut faults = [0u32; InjectionPoint::COUNT];
    faults[point as usize] = 1;
    Arc::new(ChaosSchedule::from_config(ChaosConfig {
        horizon: 1,
        faults_per_point: faults,
        ..ChaosConfig::default()
    }))
}

/// The poisoning panics below are deliberate; keep the default hook's
/// backtraces for everything else.
fn silence_chaos_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .unwrap_or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.as_str())
                        .unwrap_or("")
                });
            if !msg.contains("chaos injection") {
                default(info);
            }
        }));
    });
}

/// Populates a durable store, poisons its engine with an injected leader
/// panic, and measures the wall time of [`DurableConnectivity::rebuild`].
fn measure_recovery(config: &FaultsBenchConfig) -> RecoveryCell {
    silence_chaos_panics();
    let vertices = config.recovery_edges + 8;
    let mut rebuild_ms: Vec<f64> = Vec::with_capacity(config.recovery_repeats.max(1));
    let mut batches_replayed = 0u64;
    let mut checkpoint_seq = 0u64;
    for cycle in 0..config.recovery_repeats.max(1) {
        let dir = std::env::temp_dir().join(format!(
            "dc-bench-faults-recovery-{}-{cycle}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DurableConnectivity::create(&dir, vertices, DurableOptions::default())
            .expect("create durable store for the recovery cell");
        for u in 0..config.recovery_edges as u32 {
            store.add_edge(u, u + 1);
        }

        dc_faults::install(one_shot(InjectionPoint::LeaderPanicBeforeApply));
        let died = store.engine().try_apply_batch(&[dynconn::BatchOp::Add(
            config.recovery_edges as u32 + 2,
            config.recovery_edges as u32 + 3,
        )]);
        dc_faults::uninstall();
        assert_eq!(
            died,
            Err(dc_batch::EngineError::Poisoned),
            "the chaos point must poison the engine"
        );

        let start = Instant::now();
        let (rebuilt, report) = store
            .rebuild()
            .expect("the log must stay replayable after an engine poison");
        rebuild_ms.push(start.elapsed().as_secs_f64() * 1e3);
        batches_replayed = report.batches_replayed;
        checkpoint_seq = report.checkpoint_seq;
        assert!(
            rebuilt.connected(0, config.recovery_edges as u32),
            "rebuilt store lost the acked chain"
        );
        drop(rebuilt);
        let _ = std::fs::remove_dir_all(&dir);
    }
    rebuild_ms.sort_by(|a, b| a.total_cmp(b));
    RecoveryCell {
        vertices,
        acked_edges: config.recovery_edges,
        rebuild_ms_best: rebuild_ms.first().copied().unwrap_or(0.0),
        rebuild_ms_median: rebuild_ms.get(rebuild_ms.len() / 2).copied().unwrap_or(0.0),
        batches_replayed,
        checkpoint_seq,
        repeats: rebuild_ms.len(),
    }
}

/// Measures the disabled-injection overhead and the recovery-from-poison
/// latency, best-of-`repeats`.
pub fn run_faults_bench(config: &FaultsBenchConfig) -> FaultsBaseline {
    let topo = Topology::PowerLaw {
        n: config.n,
        m_per_vertex: 4,
    };
    let graph = topo.build(config.seed);
    let workload = presets::read_storm(&graph, config.threads, config.ops_per_thread, config.seed);
    dc_faults::uninstall();

    // One unmeasured warm-up run: the first run of the process pays page
    // faults and cold caches none of the later cells pay, and the gate
    // compares cells against each other.
    {
        let engine = dc_batch::BatchEngine::new(graph.num_vertices());
        run_engine_workload(&engine, &workload);
    }

    let armed = empty_schedule(config.seed);
    let mut best = [0.0f64; MODES.len()];
    // The most favorable baseline-vs-disabled pair across repeat cycles
    // (paired so common-mode noise cancels, min so only a regression
    // visible in every cycle trips the gate).
    let mut disabled_overhead_percent = f64::INFINITY;
    for _ in 0..config.repeats.max(1) {
        let mut cycle = [0.0f64; MODES.len()];
        for (i, mode) in MODES.iter().enumerate() {
            match *mode {
                "armed" => dc_faults::install(Arc::clone(&armed)),
                _ => dc_faults::uninstall(),
            }
            let engine = dc_batch::BatchEngine::new(graph.num_vertices());
            let ops_per_sec = run_engine_workload(&engine, &workload);
            cycle[i] = ops_per_sec;
            best[i] = best[i].max(ops_per_sec);
        }
        let paired = (1.0 - cycle[MODES.len() - 1] / cycle[0].max(1e-9)) * 100.0;
        disabled_overhead_percent = disabled_overhead_percent.min(paired);
    }
    dc_faults::uninstall();

    let baseline_ops = best[0].max(1e-9);
    let overhead = |ops: f64| (1.0 - ops / baseline_ops) * 100.0;
    let modes = MODES
        .iter()
        .zip(best)
        .map(|(mode, ops_per_sec)| FaultModeCell {
            mode: mode.to_string(),
            ops_per_sec,
            overhead_percent: overhead(ops_per_sec),
        })
        .collect::<Vec<_>>();
    let armed_checks = InjectionPoint::ALL
        .iter()
        .map(|&p| (p.name().to_string(), armed.checks(p)))
        .filter(|(_, v)| *v > 0)
        .collect();

    FaultsBaseline {
        git_rev: crate::ettbench::git_rev(),
        config: Some(config.clone()),
        modes,
        disabled_overhead_percent,
        armed_checks,
        recovery: measure_recovery(config),
    }
}

impl FaultsBaseline {
    /// Renders the measurement as pretty JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"dc-bench/faults/v1\",\n");
        out.push_str(&format!("  \"git_rev\": {},\n", json_string(&self.git_rev)));
        if let Some(config) = &self.config {
            out.push_str("  \"config\": {\n");
            out.push_str(&format!("    \"vertices\": {},\n", config.n));
            out.push_str(&format!(
                "    \"ops_per_thread\": {},\n",
                config.ops_per_thread
            ));
            out.push_str(&format!("    \"threads\": {},\n", config.threads));
            out.push_str(&format!("    \"seed\": {},\n", config.seed));
            out.push_str(&format!("    \"repeats_best_of\": {},\n", config.repeats));
            out.push_str(&format!(
                "    \"recovery_edges\": {},\n",
                config.recovery_edges
            ));
            out.push_str(&format!(
                "    \"recovery_repeats\": {}\n",
                config.recovery_repeats
            ));
            out.push_str("  },\n");
        }
        out.push_str("  \"modes\": {");
        for (i, cell) in self.modes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {{ \"ops_per_sec\": {}, \"overhead_percent\": {} }}",
                json_string(&cell.mode),
                json_number(cell.ops_per_sec),
                json_number(cell.overhead_percent)
            ));
        }
        out.push_str("\n  },\n");
        out.push_str(&format!(
            "  \"disabled_overhead_percent\": {},\n",
            json_number(self.disabled_overhead_percent)
        ));
        out.push_str(&format!(
            "  \"gate_max_disabled_overhead_percent\": {},\n",
            json_number(GATE_MAX_DISABLED_OVERHEAD_PERCENT)
        ));
        out.push_str("  \"armed_checks\": {");
        for (i, (name, value)) in self.armed_checks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_string(name), value));
        }
        out.push_str("\n  },\n");
        out.push_str("  \"recovery\": {\n");
        out.push_str(&format!("    \"vertices\": {},\n", self.recovery.vertices));
        out.push_str(&format!(
            "    \"acked_edges\": {},\n",
            self.recovery.acked_edges
        ));
        out.push_str(&format!(
            "    \"rebuild_ms_best\": {},\n",
            json_number(self.recovery.rebuild_ms_best)
        ));
        out.push_str(&format!(
            "    \"rebuild_ms_median\": {},\n",
            json_number(self.recovery.rebuild_ms_median)
        ));
        out.push_str(&format!(
            "    \"batches_replayed\": {},\n",
            self.recovery.batches_replayed
        ));
        out.push_str(&format!(
            "    \"checkpoint_seq\": {},\n",
            self.recovery.checkpoint_seq
        ));
        out.push_str(&format!("    \"repeats\": {}\n", self.recovery.repeats));
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }

    /// Renders an aligned text table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let threads = self.config.as_ref().map(|c| c.threads).unwrap_or(0);
        out.push_str(&format!(
            "== Fault-harness overhead (batch-engine read storm, {} threads, rev {}) ==\n",
            threads, self.git_rev
        ));
        out.push_str(&format!(
            "{:<20}{:>14}{:>12}\n",
            "mode", "ops/s", "overhead %"
        ));
        for cell in &self.modes {
            out.push_str(&format!(
                "{:<20}{:>14.0}{:>12.2}\n",
                cell.mode, cell.ops_per_sec, cell.overhead_percent
            ));
        }
        out.push_str(&format!(
            "paired disabled overhead (gate value): {:.2}%\n",
            self.disabled_overhead_percent
        ));
        for (name, checks) in &self.armed_checks {
            out.push_str(&format!("armed checks {:<24} {}\n", name, checks));
        }
        out.push_str(&format!(
            "recovery from poison: best {:.2} ms, median {:.2} ms \
             ({} acked edges, checkpoint seq {}, {} batches replayed, {} cycles)\n",
            self.recovery.rebuild_ms_best,
            self.recovery.rebuild_ms_median,
            self.recovery.acked_edges,
            self.recovery.checkpoint_seq,
            self.recovery.batches_replayed,
            self.recovery.repeats
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_bench_runs_on_a_tiny_instance() {
        let _guard = dc_faults::test_guard();
        let config = FaultsBenchConfig {
            n: 96,
            ops_per_thread: 400,
            threads: 2,
            seed: 7,
            repeats: 1,
            recovery_edges: 24,
            recovery_repeats: 1,
        };
        let baseline = run_faults_bench(&config);
        let modes: Vec<&str> = baseline.modes.iter().map(|c| c.mode.as_str()).collect();
        assert_eq!(modes, ["baseline", "armed", "disabled"]);
        assert!(baseline.modes.iter().all(|c| c.ops_per_sec > 0.0));
        // The armed run must have actually crossed the engine's check
        // sites — otherwise the overhead cells measure nothing.
        assert!(
            baseline
                .armed_checks
                .iter()
                .any(|(name, _)| name == "intake_stall"),
            "armed run crossed no intake checks: {:?}",
            baseline.armed_checks
        );
        assert!(baseline.recovery.rebuild_ms_best > 0.0);
        assert_eq!(baseline.recovery.repeats, 1);
        // No gate assertion here — the tiny instance is far too noisy; the
        // gate is enforced by the release-mode summary binary in CI.
        assert!(baseline.disabled_overhead_percent.is_finite());
        let json = baseline.to_json();
        assert!(json.contains("dc-bench/faults/v1"));
        assert!(json.contains("disabled_overhead_percent"));
        assert!(json.contains("rebuild_ms_best"));
        assert!(baseline.render_text().contains("Fault-harness overhead"));
    }
}
