//! Shared driver behind the per-figure binaries.
//!
//! Every figure of the evaluation is "measure quantity Q for a set of
//! variants over a set of graphs and thread counts"; this module implements
//! that loop once so each binary only declares its scenario, variant subset
//! and measured quantity.

use crate::config::BenchConfig;
use crate::report::FigureData;
use crate::scenario::{Scenario, Workload};
use crate::throughput::{run_throughput, ThroughputResult};
use dc_graph::GraphSpec;
use dynconn::Variant;

/// Which quantity a figure reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Measure {
    /// Operations per millisecond (Figures 5, 6, 9, 10).
    Throughput,
    /// Active time rate in percent (Figures 7, 8, 11, 12).
    ActiveTime,
}

impl Measure {
    fn extract(&self, result: &ThroughputResult) -> f64 {
        match self {
            Measure::Throughput => result.ops_per_ms,
            Measure::ActiveTime => result.active_time_percent,
        }
    }
}

/// Runs one full figure: a thread sweep over the small graphs plus a
/// max-parallelism measurement on the large graphs, and prints the resulting
/// tables (also dumping JSON under `target/figures/`).
pub fn run_figure(
    name: &str,
    title: &str,
    scenario: Scenario,
    variants: &[Variant],
    measure: Measure,
    include_large: bool,
    config: &BenchConfig,
) -> FigureData {
    let catalog = config.catalog();
    let mut figure = FigureData::new(title, config.thread_counts.clone());

    for &spec in GraphSpec::table1() {
        let graph = catalog.build(spec);
        eprintln!(
            "[{}] graph {:<28} |V|={} |E|={}",
            name,
            spec.name(),
            graph.num_vertices(),
            graph.num_edges()
        );
        for &threads in &config.thread_counts {
            let workload = Workload::generate(
                &graph,
                scenario,
                threads,
                config.ops_per_thread,
                config.seed,
            );
            for &variant in variants {
                let structure = variant.build(graph.num_vertices());
                let result = run_throughput(structure.as_ref(), &workload);
                figure.record(spec.name(), variant.name(), measure.extract(&result));
            }
        }
    }

    if include_large {
        for &spec in GraphSpec::table2() {
            let graph = catalog.build(spec);
            eprintln!(
                "[{}] graph {:<28} |V|={} |E|={} ({} threads)",
                name,
                spec.name(),
                graph.num_vertices(),
                graph.num_edges(),
                config.max_threads
            );
            let workload = Workload::generate(
                &graph,
                scenario,
                config.max_threads,
                config.ops_per_thread,
                config.seed,
            );
            for &variant in variants {
                let structure = variant.build(graph.num_vertices());
                let result = run_throughput(structure.as_ref(), &workload);
                figure.record(
                    &format!("{} (large, {} threads)", spec.name(), config.max_threads),
                    variant.name(),
                    measure.extract(&result),
                );
            }
        }
    }

    println!("{}", figure.render_text());
    match figure.write_json(name) {
        Ok(path) => eprintln!("[{}] JSON written to {}", name, path.display()),
        Err(err) => eprintln!("[{}] could not write JSON: {err}", name),
    }
    figure
}

/// One measured cell of the adjacency-layer baseline.
#[derive(Clone, Debug)]
pub struct AdjacencyCell {
    /// Scenario name.
    pub scenario: String,
    /// Thread count.
    pub threads: usize,
    /// Variant label (short: "coarse" / "ours").
    pub variant: String,
    /// Operations per second.
    pub ops_per_sec: f64,
    /// Active time rate in percent (time *not* spent waiting for locks),
    /// from [`dc_sync::waitstats`].
    pub active_time_percent: f64,
    /// Total lock-wait time across all threads, in milliseconds.
    pub wait_ms: f64,
    /// Sampled per-operation latency percentiles in microseconds
    /// (p50/p99/p999), from the 1-in-16 sampling in the throughput harness.
    pub p50_us: f64,
    /// 99th-percentile per-operation latency in microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile per-operation latency in microseconds.
    pub p999_us: f64,
}

/// The machine-readable adjacency perf baseline emitted as
/// `BENCH_adjacency.json`, so future PRs can track the trajectory.
#[derive(Clone, Debug, Default)]
pub struct AdjacencyBaseline {
    /// Graph description.
    pub graph: String,
    /// Vertices in the measured graph.
    pub vertices: usize,
    /// Edges in the measured graph.
    pub edges: usize,
    /// Operations per thread per measurement.
    pub ops_per_thread: usize,
    /// All measured cells.
    pub cells: Vec<AdjacencyCell>,
    /// Adjacency-store occupancy after the final full-algorithm run:
    /// (materialized slots, materialized pages, spilled slots) for the
    /// non-tree store, then the tree store, then materialized forest levels.
    pub store_stats: Vec<(String, usize)>,
}

impl AdjacencyBaseline {
    /// Renders the baseline as pretty JSON.
    pub fn to_json(&self) -> String {
        use crate::report::{json_number, json_string};
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"dc-bench/adjacency-baseline/v3\",\n");
        out.push_str(&format!("  \"graph\": {},\n", json_string(&self.graph)));
        out.push_str(&format!("  \"vertices\": {},\n", self.vertices));
        out.push_str(&format!("  \"edges\": {},\n", self.edges));
        out.push_str(&format!("  \"ops_per_thread\": {},\n", self.ops_per_thread));
        out.push_str("  \"results\": {");
        let mut scenarios: Vec<&str> = self.cells.iter().map(|c| c.scenario.as_str()).collect();
        scenarios.dedup();
        for (si, scenario) in scenarios.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {{", json_string(scenario)));
            let cells: Vec<&AdjacencyCell> = self
                .cells
                .iter()
                .filter(|c| c.scenario == *scenario)
                .collect();
            let mut threads: Vec<usize> = cells.iter().map(|c| c.threads).collect();
            threads.dedup();
            for (ti, t) in threads.iter().enumerate() {
                if ti > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n      \"{t}\": {{"));
                for (vi, cell) in cells.iter().filter(|c| c.threads == *t).enumerate() {
                    if vi > 0 {
                        out.push(',');
                    }
                    // Lock-wait time rides alongside every throughput number
                    // (the waitstats counters were collected by the harness
                    // all along but never serialized before).
                    out.push_str(&format!(
                        "\n        {}: {{ \"ops_per_sec\": {}, \"active_time_percent\": {}, \"wait_ms\": {}, \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {} }}",
                        json_string(&cell.variant),
                        json_number(cell.ops_per_sec),
                        json_number(cell.active_time_percent),
                        json_number(cell.wait_ms),
                        json_number(cell.p50_us),
                        json_number(cell.p99_us),
                        json_number(cell.p999_us)
                    ));
                }
                out.push_str("\n      }");
            }
            out.push_str("\n    }");
        }
        out.push_str("\n  },\n");
        out.push_str("  \"adjacency\": {");
        for (i, (key, value)) in self.store_stats.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_string(key), value));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Measures the adjacency-layer baseline: the random-subset (50% reads),
/// incremental and decremental scenarios at each of `thread_counts`, for the
/// coarse-grained baseline and the full algorithm (whose `Hdt` exposes the
/// adjacency-store occupancy counters recorded alongside).
pub fn run_adjacency_baseline(
    graph: &dc_graph::Graph,
    graph_name: &str,
    thread_counts: &[usize],
    ops_per_thread: usize,
    seed: u64,
) -> AdjacencyBaseline {
    use dynconn::locking::FineLocking;
    use dynconn::nonblocking::NonBlockingVariant;

    let mut baseline = AdjacencyBaseline {
        graph: graph_name.to_string(),
        vertices: graph.num_vertices(),
        edges: graph.num_edges(),
        ops_per_thread,
        ..Default::default()
    };
    let scenarios = [
        Scenario::RandomSubset { read_percent: 50 },
        Scenario::Incremental,
        Scenario::Decremental,
    ];
    let mut last_ours: Option<NonBlockingVariant<FineLocking>> = None;
    for scenario in scenarios {
        for &threads in thread_counts {
            let workload = Workload::generate(graph, scenario, threads, ops_per_thread, seed);
            let coarse = Variant::CoarseGrained.build(graph.num_vertices());
            let result = run_throughput(coarse.as_ref(), &workload);
            baseline.cells.push(AdjacencyCell {
                scenario: scenario.name(),
                threads,
                variant: "coarse".to_string(),
                ops_per_sec: result.ops_per_ms * 1e3,
                active_time_percent: result.active_time_percent,
                wait_ms: result.wait_nanos as f64 / 1e6,
                p50_us: result.latency.p50() as f64 / 1e3,
                p99_us: result.latency.p99() as f64 / 1e3,
                p999_us: result.latency.p999() as f64 / 1e3,
            });
            let ours = NonBlockingVariant::new(graph.num_vertices(), FineLocking::new());
            let result = run_throughput(&ours, &workload);
            baseline.cells.push(AdjacencyCell {
                scenario: scenario.name(),
                threads,
                variant: "ours".to_string(),
                ops_per_sec: result.ops_per_ms * 1e3,
                active_time_percent: result.active_time_percent,
                wait_ms: result.wait_nanos as f64 / 1e6,
                p50_us: result.latency.p50() as f64 / 1e3,
                p99_us: result.latency.p99() as f64 / 1e3,
                p999_us: result.latency.p999() as f64 / 1e3,
            });
            last_ours = Some(ours);
        }
    }
    if let Some(ours) = last_ours {
        let hdt = ours.hdt();
        baseline.store_stats = vec![
            (
                "nontree_materialized_slots".into(),
                hdt.nontree_store().materialized_slots(),
            ),
            (
                "nontree_materialized_pages".into(),
                hdt.nontree_store().materialized_pages(),
            ),
            (
                "nontree_spilled_slots".into(),
                hdt.nontree_store().spilled_slots(),
            ),
            (
                "tree_materialized_slots".into(),
                hdt.tree_store().materialized_slots(),
            ),
            (
                "tree_materialized_pages".into(),
                hdt.tree_store().materialized_pages(),
            ),
            (
                "tree_spilled_slots".into(),
                hdt.tree_store().spilled_slots(),
            ),
            (
                "materialized_forest_levels".into(),
                hdt.materialized_forest_levels(),
            ),
        ];
    }
    baseline
}

/// The variant subsets used by the paper's plots.
pub mod variant_sets {
    use dynconn::Variant;

    /// All thirteen variants (Figures 5 and 6).
    pub fn throughput_all() -> Vec<Variant> {
        Variant::all().to_vec()
    }

    /// The subset shown in the active-time plots (Figures 7 and 8).
    pub fn active_time_random() -> Vec<Variant> {
        vec![
            Variant::CoarseGrained,
            Variant::CoarseNonBlockingReads,
            Variant::FineGrained,
            Variant::FineNonBlockingReads,
            Variant::OurAlgorithm,
            Variant::OurAlgorithmCoarse,
        ]
    }

    /// The subset shown in the incremental/decremental plots (Figures 9, 10).
    pub fn incremental_decremental() -> Vec<Variant> {
        vec![
            Variant::CoarseGrained,
            Variant::CoarseHtm,
            Variant::FineGrained,
            Variant::OurAlgorithm,
            Variant::OurAlgorithmCoarse,
            Variant::OurAlgorithmCoarseHtm,
            Variant::FlatCombiningNonBlockingReads,
        ]
    }

    /// The subset shown in the incremental/decremental active-time plots
    /// (Figures 11 and 12).
    pub fn active_time_incremental() -> Vec<Variant> {
        vec![
            Variant::CoarseGrained,
            Variant::FineGrained,
            Variant::OurAlgorithm,
            Variant::OurAlgorithmCoarse,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_extracts_the_right_field() {
        let result = ThroughputResult {
            threads: 2,
            operations: 100,
            millis: 10.0,
            ops_per_ms: 10.0,
            active_time_percent: 93.0,
            wait_nanos: 1_400_000,
            wait_events: 7,
            latency: crate::stats::LatencyHistogram::new(),
        };
        assert_eq!(Measure::Throughput.extract(&result), 10.0);
        assert_eq!(Measure::ActiveTime.extract(&result), 93.0);
    }

    #[test]
    fn variant_sets_match_paper_legends() {
        assert_eq!(variant_sets::throughput_all().len(), 13);
        assert_eq!(variant_sets::active_time_random().len(), 6);
        assert_eq!(variant_sets::incremental_decremental().len(), 7);
        assert_eq!(variant_sets::active_time_incremental().len(), 4);
    }
}
