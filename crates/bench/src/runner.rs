//! Shared driver behind the per-figure binaries.
//!
//! Every figure of the evaluation is "measure quantity Q for a set of
//! variants over a set of graphs and thread counts"; this module implements
//! that loop once so each binary only declares its scenario, variant subset
//! and measured quantity.

use crate::config::BenchConfig;
use crate::report::FigureData;
use crate::scenario::{Scenario, Workload};
use crate::throughput::{run_throughput, ThroughputResult};
use dc_graph::GraphSpec;
use dynconn::Variant;

/// Which quantity a figure reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Measure {
    /// Operations per millisecond (Figures 5, 6, 9, 10).
    Throughput,
    /// Active time rate in percent (Figures 7, 8, 11, 12).
    ActiveTime,
}

impl Measure {
    fn extract(&self, result: &ThroughputResult) -> f64 {
        match self {
            Measure::Throughput => result.ops_per_ms,
            Measure::ActiveTime => result.active_time_percent,
        }
    }
}

/// Runs one full figure: a thread sweep over the small graphs plus a
/// max-parallelism measurement on the large graphs, and prints the resulting
/// tables (also dumping JSON under `target/figures/`).
pub fn run_figure(
    name: &str,
    title: &str,
    scenario: Scenario,
    variants: &[Variant],
    measure: Measure,
    include_large: bool,
    config: &BenchConfig,
) -> FigureData {
    let catalog = config.catalog();
    let mut figure = FigureData::new(title, config.thread_counts.clone());

    for &spec in GraphSpec::table1() {
        let graph = catalog.build(spec);
        eprintln!(
            "[{}] graph {:<28} |V|={} |E|={}",
            name,
            spec.name(),
            graph.num_vertices(),
            graph.num_edges()
        );
        for &threads in &config.thread_counts {
            let workload =
                Workload::generate(&graph, scenario, threads, config.ops_per_thread, config.seed);
            for &variant in variants {
                let structure = variant.build(graph.num_vertices());
                let result = run_throughput(structure.as_ref(), &workload);
                figure.record(spec.name(), variant.name(), measure.extract(&result));
            }
        }
    }

    if include_large {
        for &spec in GraphSpec::table2() {
            let graph = catalog.build(spec);
            eprintln!(
                "[{}] graph {:<28} |V|={} |E|={} ({} threads)",
                name,
                spec.name(),
                graph.num_vertices(),
                graph.num_edges(),
                config.max_threads
            );
            let workload = Workload::generate(
                &graph,
                scenario,
                config.max_threads,
                config.ops_per_thread,
                config.seed,
            );
            for &variant in variants {
                let structure = variant.build(graph.num_vertices());
                let result = run_throughput(structure.as_ref(), &workload);
                figure.record(
                    &format!("{} (large, {} threads)", spec.name(), config.max_threads),
                    variant.name(),
                    measure.extract(&result),
                );
            }
        }
    }

    println!("{}", figure.render_text());
    match figure.write_json(name) {
        Ok(path) => eprintln!("[{}] JSON written to {}", name, path.display()),
        Err(err) => eprintln!("[{}] could not write JSON: {err}", name),
    }
    figure
}

/// The variant subsets used by the paper's plots.
pub mod variant_sets {
    use dynconn::Variant;

    /// All thirteen variants (Figures 5 and 6).
    pub fn throughput_all() -> Vec<Variant> {
        Variant::all().to_vec()
    }

    /// The subset shown in the active-time plots (Figures 7 and 8).
    pub fn active_time_random() -> Vec<Variant> {
        vec![
            Variant::CoarseGrained,
            Variant::CoarseNonBlockingReads,
            Variant::FineGrained,
            Variant::FineNonBlockingReads,
            Variant::OurAlgorithm,
            Variant::OurAlgorithmCoarse,
        ]
    }

    /// The subset shown in the incremental/decremental plots (Figures 9, 10).
    pub fn incremental_decremental() -> Vec<Variant> {
        vec![
            Variant::CoarseGrained,
            Variant::CoarseHtm,
            Variant::FineGrained,
            Variant::OurAlgorithm,
            Variant::OurAlgorithmCoarse,
            Variant::OurAlgorithmCoarseHtm,
            Variant::FlatCombiningNonBlockingReads,
        ]
    }

    /// The subset shown in the incremental/decremental active-time plots
    /// (Figures 11 and 12).
    pub fn active_time_incremental() -> Vec<Variant> {
        vec![
            Variant::CoarseGrained,
            Variant::FineGrained,
            Variant::OurAlgorithm,
            Variant::OurAlgorithmCoarse,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_extracts_the_right_field() {
        let result = ThroughputResult {
            threads: 2,
            operations: 100,
            millis: 10.0,
            ops_per_ms: 10.0,
            active_time_percent: 93.0,
        };
        assert_eq!(Measure::Throughput.extract(&result), 10.0);
        assert_eq!(Measure::ActiveTime.extract(&result), 93.0);
    }

    #[test]
    fn variant_sets_match_paper_legends() {
        assert_eq!(variant_sets::throughput_all().len(), 13);
        assert_eq!(variant_sets::active_time_random().len(), 6);
        assert_eq!(variant_sets::incremental_decremental().len(), 7);
        assert_eq!(variant_sets::active_time_incremental().len(), 4);
    }
}
