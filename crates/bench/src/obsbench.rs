//! The observability-overhead benchmark, emitted as `BENCH_obs.json`.
//!
//! `dc_obs` promises that *disabled* observability costs one relaxed load
//! per recording site — cheap enough to ship compiled-in. This tier holds
//! the crate to that promise: the read-storm preset (the most
//! instrumentation-sensitive mix, since lock-free reads have no lock wait
//! to hide a counter behind) runs over the paper's full algorithm in four
//! modes:
//!
//! * **baseline** — observability never touched (flags off since process
//!   start);
//! * **metrics** — the counter/gauge/span registry enabled;
//! * **metrics+tracing** — registry plus the flight recorder (per-thread
//!   event rings);
//! * **disabled** — flags switched back off after the enabled runs, so the
//!   cell measures the steady disabled state the gate is about (rings
//!   allocated, branch predictors trained on the flag).
//!
//! Each mode's reported throughput is best-of-`repeats`. The **gate** is
//! the disabled cell's overhead versus baseline, and it is computed from
//! *paired* repeats, not from the two maxima: within each repeat cycle the
//! four modes run back-to-back, so the baseline and disabled runs of one
//! cycle share their scheduler/frequency weather and the common-mode noise
//! cancels in the ratio. The gate value is the **minimum paired overhead
//! across cycles** — tripwire semantics: a real regression (a disabled
//! path that allocates, a counter that became a CAS loop) slows *every*
//! cycle's disabled run, so even the most favorable pair shows it;
//! one-sided scheduler noise cannot produce a false failure unless it hits
//! all cycles at once. The ceiling is
//! [`GATE_MAX_DISABLED_OVERHEAD_PERCENT`]. The enabled cells are reported
//! (not gated — enabling is allowed to cost something) together with the
//! counter totals, span percentiles and flight-recorder volume the run
//! produced, so the artifact doubles as a smoke test that the
//! instrumentation actually fires.

use crate::report::{json_number, json_string};
use dc_workloads::{presets, GeneratedWorkload, Op, Topology};
use dynconn::{DynamicConnectivity, Variant};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Ceiling on the disabled-mode overhead versus baseline, in percent.
pub const GATE_MAX_DISABLED_OVERHEAD_PERCENT: f64 = 3.0;

/// Scenario parameters for the observability benchmark.
#[derive(Clone, Debug)]
pub struct ObsBenchConfig {
    /// Vertex budget for the power-law universe.
    pub n: usize,
    /// Per-thread operation budget.
    pub ops_per_thread: usize,
    /// Concurrent threads.
    pub threads: usize,
    /// PRNG seed.
    pub seed: u64,
    /// Repetitions; best throughput per mode is kept. Kept high (each
    /// run is ~0.1s) because the gate compares two best-of maxima: with
    /// few samples, scheduler noise between the baseline and disabled
    /// maxima dwarfs the one-relaxed-load cost being measured.
    pub repeats: usize,
}

impl ObsBenchConfig {
    /// The tracked configuration (shrunk under `DC_BENCH_QUICK=1`, thread
    /// count overridable via `DC_BENCH_THREADS`).
    pub fn from_env() -> Self {
        let quick = std::env::var("DC_BENCH_QUICK")
            .map(|v| v != "0")
            .unwrap_or(false);
        let mut config = if quick {
            ObsBenchConfig {
                n: 512,
                ops_per_thread: 4_000,
                threads: 4,
                seed: 0x0B5,
                repeats: 10,
            }
        } else {
            ObsBenchConfig {
                n: 4_096,
                ops_per_thread: 40_000,
                threads: 8,
                seed: 0x0B5,
                repeats: 12,
            }
        };
        if let Ok(v) = std::env::var("DC_BENCH_THREADS") {
            if let Some(t) = v
                .split(',')
                .filter_map(|s| s.trim().parse::<usize>().ok())
                .max()
            {
                config.threads = t.max(1);
            }
        }
        config
    }
}

/// One measured mode.
#[derive(Clone, Debug)]
pub struct ModeCell {
    /// Mode name ("baseline", "disabled", "metrics", "metrics+tracing").
    pub mode: String,
    /// Operations per second (best of `repeats`).
    pub ops_per_sec: f64,
    /// Throughput lost versus baseline, in percent (negative = faster,
    /// i.e. noise).
    pub overhead_percent: f64,
}

/// One span histogram observed during the enabled runs.
#[derive(Clone, Debug)]
pub struct SpanCell {
    /// Span name (from [`dc_obs::SpanId::name`]).
    pub span: String,
    /// Samples recorded.
    pub count: u64,
    /// Median, nanoseconds.
    pub p50_nanos: u64,
    /// 99th percentile, nanoseconds.
    pub p99_nanos: u64,
}

/// The full observability measurement, serialized as `BENCH_obs.json`.
#[derive(Clone, Debug, Default)]
pub struct ObsBaseline {
    /// Short git revision.
    pub git_rev: String,
    /// The configuration the numbers were measured at.
    pub config: Option<ObsBenchConfig>,
    /// The four mode cells, baseline first.
    pub modes: Vec<ModeCell>,
    /// The gate value: disabled-mode overhead versus baseline in percent,
    /// from the most favorable *paired* repeat cycle (see module docs).
    pub disabled_overhead_percent: f64,
    /// Nonzero counter totals after the enabled runs.
    pub counters: Vec<(String, u64)>,
    /// Span histograms with at least one sample.
    pub spans: Vec<SpanCell>,
    /// Flight-recorder events live in the rings after the tracing run.
    pub flight_events: usize,
    /// Total bytes ever recorded by the flight recorder.
    pub flight_bytes: u64,
}

impl ObsBaseline {
    /// Whether the disabled-overhead gate passes.
    pub fn gate_passes(&self) -> bool {
        self.disabled_overhead_percent <= GATE_MAX_DISABLED_OVERHEAD_PERCENT
    }
}

/// Preloads and runs the workload's phases across threads, returning ops/s
/// over the phase execution (preload excluded).
fn run_workload(structure: &dyn DynamicConnectivity, workload: &GeneratedWorkload) -> f64 {
    for edge in &workload.preload {
        structure.add_edge(edge.u(), edge.v());
    }
    let mut operations = 0usize;
    let start = Instant::now();
    for phase in &workload.phases {
        operations += phase.total_operations();
        let start_flag = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let handles: Vec<_> = phase
                .per_thread
                .iter()
                .map(|ops| {
                    let start_flag = &start_flag;
                    scope.spawn(move || {
                        while !start_flag.load(Ordering::Acquire) {
                            std::hint::spin_loop();
                        }
                        for op in ops {
                            match *op {
                                Op::Add(u, v) => structure.add_edge(u, v),
                                Op::Remove(u, v) => structure.remove_edge(u, v),
                                Op::Query(u, v) => {
                                    std::hint::black_box(structure.connected(u, v));
                                }
                            }
                        }
                    })
                })
                .collect();
            start_flag.store(true, Ordering::Release);
            for handle in handles {
                handle.join().expect("obs bench worker panicked");
            }
        });
    }
    operations as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

/// The measurement order within a repeat: baseline while the flags have
/// never been on, then the enabled modes, then disabled — so the disabled
/// cell measures the state a production binary returns to after a
/// diagnosis session.
const MODES: [&str; 4] = ["baseline", "metrics", "metrics+tracing", "disabled"];

fn set_mode(mode: &str) {
    match mode {
        "baseline" | "disabled" => {
            dc_obs::set_metrics_enabled(false);
            dc_obs::set_tracing_enabled(false);
        }
        "metrics" => {
            dc_obs::set_metrics_enabled(true);
            dc_obs::set_tracing_enabled(false);
        }
        "metrics+tracing" => {
            dc_obs::set_metrics_enabled(true);
            dc_obs::set_tracing_enabled(true);
        }
        other => unreachable!("unknown obs bench mode {other}"),
    }
}

/// Measures the read-storm workload in all four modes, best-of-`repeats`.
pub fn run_obs_bench(config: &ObsBenchConfig) -> ObsBaseline {
    let topo = Topology::PowerLaw {
        n: config.n,
        m_per_vertex: 4,
    };
    let graph = topo.build(config.seed);
    let workload = presets::read_storm(&graph, config.threads, config.ops_per_thread, config.seed);
    dc_obs::reset();

    // One unmeasured warm-up run: the very first run of the process pays
    // page faults and cold caches that none of the later cells pay, and
    // the gate compares cells against each other.
    {
        set_mode("baseline");
        let structure = Variant::OurAlgorithm.build(graph.num_vertices());
        run_workload(structure.as_ref(), &workload);
    }

    let mut best = [0.0f64; MODES.len()];
    // The most favorable baseline-vs-disabled pair across repeat cycles
    // (see the module docs: paired so common-mode noise cancels, min so
    // only a regression visible in every cycle trips the gate).
    let mut disabled_overhead_percent = f64::INFINITY;
    for _ in 0..config.repeats.max(1) {
        let mut cycle = [0.0f64; MODES.len()];
        for (i, mode) in MODES.iter().enumerate() {
            set_mode(mode);
            let structure = Variant::OurAlgorithm.build(graph.num_vertices());
            let ops_per_sec = run_workload(structure.as_ref(), &workload);
            cycle[i] = ops_per_sec;
            best[i] = best[i].max(ops_per_sec);
        }
        let paired = (1.0 - cycle[MODES.len() - 1] / cycle[0].max(1e-9)) * 100.0;
        disabled_overhead_percent = disabled_overhead_percent.min(paired);
    }
    dc_obs::set_metrics_enabled(false);
    dc_obs::set_tracing_enabled(false);

    let baseline_ops = best[0].max(1e-9);
    let overhead = |ops: f64| (1.0 - ops / baseline_ops) * 100.0;
    let modes = MODES
        .iter()
        .zip(best)
        .map(|(mode, ops_per_sec)| ModeCell {
            mode: mode.to_string(),
            ops_per_sec,
            overhead_percent: overhead(ops_per_sec),
        })
        .collect::<Vec<_>>();

    let snapshot = dc_obs::ObsSnapshot::gather();
    let counters = dc_obs::Counter::ALL
        .iter()
        .map(|&c| (c.name().to_string(), snapshot.counter(c)))
        .filter(|(_, v)| *v > 0)
        .collect();
    let spans = dc_obs::SpanId::ALL
        .iter()
        .map(|&id| (id, dc_obs::span_snapshot(id)))
        .filter(|(_, h)| h.count() > 0)
        .map(|(id, h)| SpanCell {
            span: id.name().to_string(),
            count: h.count(),
            p50_nanos: h.p50(),
            p99_nanos: h.p99(),
        })
        .collect();

    ObsBaseline {
        git_rev: crate::ettbench::git_rev(),
        config: Some(config.clone()),
        modes,
        disabled_overhead_percent,
        counters,
        spans,
        flight_events: dc_obs::dump_events().len(),
        flight_bytes: dc_obs::flight::total_bytes_recorded(),
    }
}

impl ObsBaseline {
    /// Renders the measurement as pretty JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"dc-bench/obs/v1\",\n");
        out.push_str(&format!("  \"git_rev\": {},\n", json_string(&self.git_rev)));
        if let Some(config) = &self.config {
            out.push_str("  \"config\": {\n");
            out.push_str(&format!("    \"vertices\": {},\n", config.n));
            out.push_str(&format!(
                "    \"ops_per_thread\": {},\n",
                config.ops_per_thread
            ));
            out.push_str(&format!("    \"threads\": {},\n", config.threads));
            out.push_str(&format!("    \"seed\": {},\n", config.seed));
            out.push_str(&format!("    \"repeats_best_of\": {}\n", config.repeats));
            out.push_str("  },\n");
        }
        out.push_str("  \"modes\": {");
        for (i, cell) in self.modes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {{ \"ops_per_sec\": {}, \"overhead_percent\": {} }}",
                json_string(&cell.mode),
                json_number(cell.ops_per_sec),
                json_number(cell.overhead_percent)
            ));
        }
        out.push_str("\n  },\n");
        out.push_str(&format!(
            "  \"disabled_overhead_percent\": {},\n",
            json_number(self.disabled_overhead_percent)
        ));
        out.push_str(&format!(
            "  \"gate_max_disabled_overhead_percent\": {},\n",
            json_number(GATE_MAX_DISABLED_OVERHEAD_PERCENT)
        ));
        out.push_str("  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_string(name), value));
        }
        out.push_str("\n  },\n");
        out.push_str("  \"spans\": {");
        for (i, cell) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {{ \"count\": {}, \"p50_nanos\": {}, \"p99_nanos\": {} }}",
                json_string(&cell.span),
                cell.count,
                cell.p50_nanos,
                cell.p99_nanos
            ));
        }
        out.push_str("\n  },\n");
        out.push_str(&format!("  \"flight_events\": {},\n", self.flight_events));
        out.push_str(&format!("  \"flight_bytes\": {}\n", self.flight_bytes));
        out.push_str("}\n");
        out
    }

    /// Renders an aligned text table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let threads = self.config.as_ref().map(|c| c.threads).unwrap_or(0);
        out.push_str(&format!(
            "== Observability overhead (read storm, {} threads, rev {}) ==\n",
            threads, self.git_rev
        ));
        out.push_str(&format!(
            "{:<20}{:>14}{:>12}\n",
            "mode", "ops/s", "overhead %"
        ));
        for cell in &self.modes {
            out.push_str(&format!(
                "{:<20}{:>14.0}{:>12.2}\n",
                cell.mode, cell.ops_per_sec, cell.overhead_percent
            ));
        }
        out.push_str(&format!(
            "paired disabled overhead (gate value): {:.2}%\n",
            self.disabled_overhead_percent
        ));
        out.push_str(&format!(
            "flight recorder: {} events live, {} bytes recorded\n",
            self.flight_events, self.flight_bytes
        ));
        for cell in &self.spans {
            out.push_str(&format!(
                "span {:<24} n={:<8} p50={}ns p99={}ns\n",
                cell.span, cell.count, cell.p50_nanos, cell.p99_nanos
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_bench_runs_on_a_tiny_instance() {
        let config = ObsBenchConfig {
            n: 96,
            ops_per_thread: 400,
            threads: 2,
            seed: 7,
            repeats: 1,
        };
        let baseline = run_obs_bench(&config);
        let modes: Vec<&str> = baseline.modes.iter().map(|c| c.mode.as_str()).collect();
        assert_eq!(
            modes,
            ["baseline", "metrics", "metrics+tracing", "disabled"]
        );
        assert!(baseline.modes.iter().all(|c| c.ops_per_sec > 0.0));
        // The enabled runs must have actually fired the instrumentation.
        assert!(
            baseline.counters.iter().any(|(n, _)| n == "hdt_additions"),
            "metrics run recorded nothing: {:?}",
            baseline.counters
        );
        assert!(baseline.flight_bytes > 0, "tracing run recorded no events");
        // No gate assertion here — the tiny instance is far too noisy; the
        // gate is enforced by the release-mode summary binary in CI.
        assert!(baseline.disabled_overhead_percent.is_finite());
        let json = baseline.to_json();
        assert!(json.contains("dc-bench/obs/v1"));
        assert!(json.contains("disabled_overhead_percent"));
        assert!(json.contains("\"metrics+tracing\""));
        assert!(baseline.render_text().contains("Observability overhead"));
    }
}
