//! Plain-text and JSON reporting for the figure/table binaries.
//!
//! The paper presents its results as line plots (throughput or active-time
//! rate vs. thread count, one line per algorithm variant) and bar charts
//! (large graphs at maximum parallelism).  The binaries in `src/bin/` print
//! the same data as aligned text tables — one row per thread count, one
//! column per variant — which is the form the series can be compared in
//! without a plotting stack, and optionally dump machine-readable JSON for
//! external plotting.

use std::collections::BTreeMap;

/// One measured series: variant name -> value per x-axis point.
#[derive(Debug, Default)]
pub struct FigureData {
    /// Figure title (e.g. "Figure 5 — random scenario, 80% reads").
    pub title: String,
    /// The x axis (thread counts), shared by all series.
    pub x_axis: Vec<usize>,
    /// Per-graph data: graph name -> (variant name -> series of values).
    pub graphs: BTreeMap<String, BTreeMap<String, Vec<f64>>>,
}

impl FigureData {
    /// Creates an empty figure with the given title and x axis.
    pub fn new(title: impl Into<String>, x_axis: Vec<usize>) -> Self {
        FigureData {
            title: title.into(),
            x_axis,
            graphs: BTreeMap::new(),
        }
    }

    /// Records one measured value.
    pub fn record(&mut self, graph: &str, variant: &str, value: f64) {
        self.graphs
            .entry(graph.to_string())
            .or_default()
            .entry(variant.to_string())
            .or_default()
            .push(value);
    }

    /// Renders the figure as aligned text tables (one per graph).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        for (graph, series) in &self.graphs {
            out.push_str(&format!("\n-- Graph: {graph} --\n"));
            // Header.
            out.push_str(&format!("{:<44}", "variant \\ threads"));
            for x in &self.x_axis {
                out.push_str(&format!("{x:>12}"));
            }
            out.push('\n');
            for (variant, values) in series {
                out.push_str(&format!("{variant:<44}"));
                for v in values {
                    out.push_str(&format!("{v:>12.1}"));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Serializes the figure to pretty JSON (hand-rolled; the offline build
    /// has no serde, and the shape is three levels of maps over numbers).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"title\": {},\n", json_string(&self.title)));
        let xs: Vec<String> = self.x_axis.iter().map(|x| x.to_string()).collect();
        out.push_str(&format!("  \"x_axis\": [{}],\n", xs.join(", ")));
        out.push_str("  \"graphs\": {");
        for (gi, (graph, series)) in self.graphs.iter().enumerate() {
            if gi > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {{", json_string(graph)));
            for (si, (variant, values)) in series.iter().enumerate() {
                if si > 0 {
                    out.push(',');
                }
                let vals: Vec<String> = values.iter().map(|v| json_number(*v)).collect();
                out.push_str(&format!(
                    "\n      {}: [{}]",
                    json_string(variant),
                    vals.join(", ")
                ));
            }
            out.push_str("\n    }");
        }
        out.push_str("\n  }\n}");
        out
    }

    /// Writes the JSON dump next to the current directory under
    /// `target/figures/<name>.json` and returns the path.
    pub fn write_json(&self, name: &str) -> std::io::Result<std::path::PathBuf> {
        let dir = std::path::Path::new("target").join("figures");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Escapes a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number (finite; NaN/inf degrade to 0).
pub fn json_number(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{:.1}", v)
        } else {
            format!("{}", v)
        }
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_render() {
        let mut fig = FigureData::new("Figure X", vec![1, 2, 4]);
        fig.record("USA roads", "(1) coarse-grained", 10.0);
        fig.record("USA roads", "(1) coarse-grained", 18.0);
        fig.record("USA roads", "(1) coarse-grained", 30.0);
        fig.record("USA roads", "(9) our algorithm", 12.0);
        let text = fig.render_text();
        assert!(text.contains("Figure X"));
        assert!(text.contains("USA roads"));
        assert!(text.contains("(1) coarse-grained"));
        assert!(text.contains("30.0"));
        let json = fig.to_json();
        assert!(json.contains("\"x_axis\""));
        assert!(json.contains("our algorithm"));
    }
}
