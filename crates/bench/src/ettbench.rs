//! The Euler-Tour-Tree node-layer benchmark: sustained churn, incremental
//! and decremental throughput, and the arena-occupancy memory proxy.
//!
//! The adjacency layer got its flat store and its tracked baseline
//! (`BENCH_adjacency.json`) in PR 1; this module does the same for the ETT
//! node layer.  The scenarios run on [`EulerForest`] directly so the numbers
//! isolate the treap/arena hot path from the HDT level structure:
//!
//! * **incremental** — link `n - 1` random-tree edges into an empty forest;
//! * **decremental** — cut all `n - 1` edges of that tree in random order;
//! * **churn** — at a steady live-edge count, repeatedly cut a random
//!   spanning edge and link a replacement. This is the memory-stability
//!   scenario: every cut retires two Euler-tour edge nodes and every link
//!   allocates two, so an arena that never recycles slots grows linearly
//!   with the operation count while a recycling arena stays bounded by the
//!   live tour size.  The benchmark records the peak arena occupancy against
//!   the live node count as an RSS proxy.
//! * **churn + readers** — the same churn loop with concurrent lock-free
//!   `connected` readers, measuring what reclamation costs the read path.
//!
//! Results are emitted as `BENCH_ett.json` (schema `dc-bench/ett-churn/v1`)
//! with the git revision and scenario metadata so the perf trajectory is
//! machine-trackable, alongside the frozen PR 1 numbers measured on the
//! pre-reclamation arena for the before/after comparison.

use crate::report::{json_number, json_string};
use dc_ett::EulerForest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};

/// Scenario parameters for the ETT node-layer benchmark.
#[derive(Clone, Copy, Debug)]
pub struct EttBenchConfig {
    /// Number of vertices (the steady live-edge count is `n - 1`).
    pub n: usize,
    /// Number of cut+link pairs in the churn scenarios.
    pub churn_ops: usize,
    /// Concurrent `connected` readers in the reader scenario.
    pub readers: usize,
    /// PRNG seed shared by all scenarios.
    pub seed: u64,
    /// Repetitions per scenario; the recorded throughput is the best run
    /// (occupancies the worst), which filters shared-machine noise out of
    /// the tracked trajectory.
    pub repeats: usize,
}

impl EttBenchConfig {
    /// The tracked configuration (shrunk under `DC_BENCH_QUICK=1`).
    pub fn from_env() -> Self {
        let quick = std::env::var("DC_BENCH_QUICK")
            .map(|v| v != "0")
            .unwrap_or(false);
        if quick {
            EttBenchConfig {
                n: 10_000,
                churn_ops: 20_000,
                readers: 2,
                seed: 0xE77,
                repeats: 2,
            }
        } else {
            EttBenchConfig {
                n: 100_000,
                churn_ops: 400_000,
                readers: 3,
                seed: 0xE77,
                repeats: 5,
            }
        }
    }
}

/// One measured scenario cell.
#[derive(Clone, Debug)]
pub struct EttCell {
    /// Scenario name.
    pub scenario: String,
    /// Writer operations per second.
    pub ops_per_sec: f64,
    /// Arena slots allocated when the scenario finished.
    pub final_occupancy: usize,
    /// Peak arena slots observed during the scenario.
    pub peak_occupancy: usize,
    /// Live tour nodes (vertices + 2 × spanning edges) at the end.
    pub live_nodes: usize,
}

impl EttCell {
    /// Peak occupancy over live nodes — the memory-stability headline (1.0
    /// is a perfectly recycling arena; the append-only arena grows with the
    /// operation count).
    pub fn occupancy_ratio(&self) -> f64 {
        self.peak_occupancy as f64 / (self.live_nodes.max(1)) as f64
    }
}

/// The full ETT node-layer measurement, serialized as `BENCH_ett.json`.
#[derive(Clone, Debug, Default)]
pub struct EttBaseline {
    /// Short git revision the numbers were measured at.
    pub git_rev: String,
    /// Vertices per scenario.
    pub n: usize,
    /// Churn operation count.
    pub churn_ops: usize,
    /// Reader threads in the reader scenario.
    pub readers: usize,
    /// Repetitions per scenario (best throughput / worst occupancy kept).
    pub repeats: usize,
    /// All measured cells.
    pub cells: Vec<EttCell>,
}

/// The frozen PR 1 numbers (append-only arena, recursive merge, SeqCst
/// parent links, 56-byte nodes with an embedded per-node lock), measured at
/// rev b3951cc with this exact harness (tracked configuration, best-of-5)
/// in a worktree, *interleaved in time* with the current-code runs recorded
/// in `BENCH_ett.json` — throughput on this shared box swings ±30% between
/// windows, so only same-window pairs are comparable. Kept verbatim so
/// `BENCH_ett.json` always carries the before/after pair.
pub const PR1_BASELINE: &[(&str, f64, usize, usize, usize)] = &[
    // (scenario, ops_per_sec, final_occupancy, peak_occupancy, live_nodes)
    ("incremental", 386_459.0, 299_998, 299_998, 299_998),
    ("decremental", 624_150.0, 299_998, 299_998, 100_000),
    ("churn", 219_328.0, 1_099_998, 1_099_998, 299_998),
    ("churn+readers", 55_906.0, 1_099_998, 1_099_998, 299_998),
];

/// Builds a uniformly random recursive tree on `forest` and returns its
/// edge list.
fn build_random_tree(forest: &EulerForest, n: usize, rng: &mut StdRng) -> Vec<(u32, u32)> {
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for v in 1..n as u32 {
        let parent = rng.gen_range(0..v);
        forest.link(parent, v);
        edges.push((parent, v));
    }
    edges
}

fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        items.swap(i, j);
    }
}

/// Runs every scenario on the tracked configuration, `config.repeats` times
/// each, keeping the best throughput and the worst occupancy per scenario.
pub fn run_ett_bench(config: &EttBenchConfig) -> EttBaseline {
    let mut baseline = EttBaseline {
        git_rev: git_rev(),
        n: config.n,
        churn_ops: config.churn_ops,
        readers: config.readers,
        repeats: config.repeats,
        ..Default::default()
    };
    for _ in 0..config.repeats.max(1) {
        for cell in run_scenarios_once(config) {
            match baseline
                .cells
                .iter_mut()
                .find(|c| c.scenario == cell.scenario)
            {
                Some(best) => {
                    best.ops_per_sec = best.ops_per_sec.max(cell.ops_per_sec);
                    best.final_occupancy = best.final_occupancy.max(cell.final_occupancy);
                    best.peak_occupancy = best.peak_occupancy.max(cell.peak_occupancy);
                    best.live_nodes = cell.live_nodes;
                }
                None => baseline.cells.push(cell),
            }
        }
    }
    baseline
}

/// One pass over all four scenarios (identical work every repeat: the PRNG
/// reseeds from the config).
fn run_scenarios_once(config: &EttBenchConfig) -> Vec<EttCell> {
    let mut cells = Vec::with_capacity(4);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.n;

    // --- incremental + decremental on one forest --------------------------
    let forest = EulerForest::with_seed(n, config.seed);
    let start = std::time::Instant::now();
    let mut edges = build_random_tree(&forest, n, &mut rng);
    let incr_secs = start.elapsed().as_secs_f64();
    cells.push(EttCell {
        scenario: "incremental".into(),
        ops_per_sec: edges.len() as f64 / incr_secs.max(1e-9),
        final_occupancy: forest.arena_occupancy(),
        peak_occupancy: forest.arena_occupancy(),
        live_nodes: forest.live_node_count(),
    });

    shuffle(&mut edges, &mut rng);
    let start = std::time::Instant::now();
    for &(u, v) in &edges {
        forest.cut(u, v);
    }
    let decr_secs = start.elapsed().as_secs_f64();
    cells.push(EttCell {
        scenario: "decremental".into(),
        ops_per_sec: edges.len() as f64 / decr_secs.max(1e-9),
        final_occupancy: forest.arena_occupancy(),
        peak_occupancy: forest.arena_occupancy(),
        live_nodes: forest.live_node_count(),
    });

    // --- churn (and churn with concurrent readers) ------------------------
    for readers in [0usize, config.readers] {
        cells.push(run_churn(config, readers, &mut rng));
    }
    cells
}

/// The steady-state churn loop: cut a random spanning edge, link a
/// replacement, keeping `n - 1` live edges throughout.
fn run_churn(config: &EttBenchConfig, readers: usize, rng: &mut StdRng) -> EttCell {
    let n = config.n;
    let forest = EulerForest::with_seed(n, config.seed ^ 0xC0FFEE);
    let mut edges = build_random_tree(&forest, n, rng);
    let stop = AtomicBool::new(false);
    let mut peak = forest.arena_occupancy();
    let mut ops = 0usize;

    let secs = std::thread::scope(|s| {
        for r in 0..readers {
            let forest = &forest;
            let stop = &stop;
            let mut reader_rng = StdRng::seed_from_u64(config.seed ^ (r as u64 + 1));
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let u = reader_rng.gen_range(0..n as u32);
                    let v = reader_rng.gen_range(0..n as u32);
                    std::hint::black_box(forest.connected(u, v));
                }
            });
        }
        let start = std::time::Instant::now();
        for i in 0..config.churn_ops {
            let idx = rng.gen_range(0..edges.len());
            let (u, v) = edges[idx];
            forest.cut(u, v);
            // Half the time try to rewire through a random pair so the tree
            // shape actually churns; fall back to relinking the same cut.
            let x = rng.gen_range(0..n as u32);
            let y = rng.gen_range(0..n as u32);
            if x != y && !forest.connected(x, y) {
                forest.link(x, y);
                edges[idx] = (x, y);
            } else {
                forest.link(u, v);
            }
            ops += 2;
            if i % 1024 == 0 {
                peak = peak.max(forest.arena_occupancy());
            }
        }
        let secs = start.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        secs
    });
    peak = peak.max(forest.arena_occupancy());

    EttCell {
        scenario: if readers == 0 {
            "churn".into()
        } else {
            "churn+readers".into()
        },
        ops_per_sec: ops as f64 / secs.max(1e-9),
        final_occupancy: forest.arena_occupancy(),
        peak_occupancy: peak,
        live_nodes: forest.live_node_count(),
    }
}

pub(crate) fn git_rev() -> String {
    let rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .map(|out| String::from_utf8_lossy(&out.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    let dirty = std::process::Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .map(|out| !out.stdout.is_empty())
        .unwrap_or(false);
    if dirty {
        format!("{rev}-dirty")
    } else {
        rev
    }
}

impl EttBaseline {
    /// Renders the measurement (current numbers plus the frozen PR 1
    /// baseline) as pretty JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"dc-bench/ett-churn/v1\",\n");
        out.push_str(&format!("  \"git_rev\": {},\n", json_string(&self.git_rev)));
        out.push_str("  \"scenario\": {\n");
        out.push_str(&format!("    \"vertices\": {},\n", self.n));
        out.push_str(&format!(
            "    \"live_edges\": {},\n",
            self.n.saturating_sub(1)
        ));
        out.push_str(&format!("    \"churn_ops\": {},\n", self.churn_ops));
        out.push_str(&format!("    \"reader_threads\": {},\n", self.readers));
        out.push_str(&format!("    \"repeats_best_of\": {}\n", self.repeats));
        out.push_str("  },\n");
        out.push_str("  \"current\": {");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {{ \"ops_per_sec\": {}, \"final_occupancy\": {}, \"peak_occupancy\": {}, \"live_nodes\": {}, \"occupancy_ratio\": {} }}",
                json_string(&cell.scenario),
                json_number(cell.ops_per_sec),
                cell.final_occupancy,
                cell.peak_occupancy,
                cell.live_nodes,
                json_number(cell.occupancy_ratio()),
            ));
        }
        out.push_str("\n  },\n");
        out.push_str("  \"pr1_baseline\": {");
        for (i, (scenario, ops, fin, peak, live)) in PR1_BASELINE.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ratio = *peak as f64 / (*live).max(1) as f64;
            out.push_str(&format!(
                "\n    {}: {{ \"ops_per_sec\": {}, \"final_occupancy\": {}, \"peak_occupancy\": {}, \"live_nodes\": {}, \"occupancy_ratio\": {} }}",
                json_string(scenario),
                json_number(*ops),
                fin,
                peak,
                live,
                json_number(ratio),
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders an aligned text table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== ETT node layer (n = {}, churn_ops = {}, rev {}) ==\n",
            self.n, self.churn_ops, self.git_rev
        ));
        out.push_str(&format!(
            "{:<16}{:>14}{:>14}{:>14}{:>12}\n",
            "scenario", "ops/s", "peak occ", "live nodes", "occ ratio"
        ));
        for cell in &self.cells {
            out.push_str(&format!(
                "{:<16}{:>14.0}{:>14}{:>14}{:>12.2}\n",
                cell.scenario,
                cell.ops_per_sec,
                cell.peak_occupancy,
                cell.live_nodes,
                cell.occupancy_ratio()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_bench_runs_on_a_small_instance() {
        let config = EttBenchConfig {
            n: 64,
            churn_ops: 200,
            readers: 1,
            seed: 7,
            repeats: 2,
        };
        let baseline = run_ett_bench(&config);
        assert_eq!(baseline.cells.len(), 4);
        for cell in &baseline.cells {
            assert!(cell.ops_per_sec > 0.0, "{} measured nothing", cell.scenario);
            assert!(
                cell.peak_occupancy >= cell.live_nodes,
                "{}: peak occupancy {} cannot be below the live node count {}",
                cell.scenario,
                cell.peak_occupancy,
                cell.live_nodes
            );
        }
        let json = baseline.to_json();
        assert!(json.contains("dc-bench/ett-churn/v1"));
        assert!(json.contains("pr1_baseline"));
        assert!(baseline.render_text().contains("churn+readers"));
    }
}
