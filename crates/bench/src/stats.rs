//! Workload statistics (Tables 3 and 4 of the paper) plus the latency
//! histogram re-export behind the tail-latency reporting: the fixed-bucket
//! log-scale [`LatencyHistogram`] was born here and now lives in `dc_obs`
//! (the observability crate snapshots its static span registries into the
//! same type), re-exported so every bench tier keeps its old import path.

use crate::scenario::{Operation, Scenario, Workload};
use dc_graph::Graph;
use dynconn::locking::GlobalLocking;
use dynconn::variants::LockedVariant;
use dynconn::{DynamicConnectivity, RecomputeOracle};

pub use dc_obs::LatencyHistogram;

/// The statistics row for one graph.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioStats {
    /// Percentage of edge additions that did not change the spanning forest.
    pub non_spanning_addition_percent: f64,
    /// Percentage of edge removals that removed a non-spanning edge.
    pub non_spanning_removal_percent: f64,
    /// Largest connected component observed at the end of the run, divided
    /// by the number of vertices (in percent).
    pub largest_component_percent: f64,
}

/// Runs `scenario` sequentially on `graph` and collects the statistics of
/// Table 3 / Table 4.
pub fn collect_stats(graph: &Graph, scenario: Scenario, ops: usize, seed: u64) -> ScenarioStats {
    let workload = Workload::generate(graph, scenario, 1, ops, seed);
    let structure = LockedVariant::new(graph.num_vertices(), GlobalLocking::new(), true);
    let mirror = RecomputeOracle::new(graph.num_vertices());
    for edge in &workload.preload {
        structure.add_edge(edge.u(), edge.v());
        mirror.add_edge(edge.u(), edge.v());
    }
    for op in workload.per_thread[0].iter() {
        match *op {
            Operation::Add(u, v) => {
                structure.add_edge(u, v);
                mirror.add_edge(u, v);
            }
            Operation::Remove(u, v) => {
                structure.remove_edge(u, v);
                mirror.remove_edge(u, v);
            }
            Operation::Query(u, v) => {
                let _ = structure.connected(u, v);
            }
        }
    }
    let stats = structure.hdt().stats();
    ScenarioStats {
        non_spanning_addition_percent: stats.non_spanning_addition_rate(),
        non_spanning_removal_percent: stats.non_spanning_removal_rate(),
        largest_component_percent: 100.0 * mirror.largest_component_fraction(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_graph::generators;

    #[test]
    fn dense_graph_has_high_non_spanning_rates() {
        // |E| = |V| * sqrt(|V|)-ish density: essentially every addition is
        // non-spanning (paper Table 3 reports 100%).
        let g = generators::erdos_renyi_nm(400, 6_000, 11);
        let stats = collect_stats(&g, Scenario::RandomSubset { read_percent: 0 }, 4_000, 3);
        assert!(
            stats.non_spanning_addition_percent > 85.0,
            "dense graph: {stats:?}"
        );
        assert!(stats.largest_component_percent > 90.0);
    }

    #[test]
    fn sparse_graph_has_low_non_spanning_rates() {
        // |E| = |V|: the paper reports ~0.1% non-spanning additions and a
        // largest component below 1%.
        let g = generators::erdos_renyi_nm(2_000, 2_000, 13);
        let stats = collect_stats(&g, Scenario::RandomSubset { read_percent: 0 }, 4_000, 3);
        assert!(
            stats.non_spanning_addition_percent < 30.0,
            "sparse graph: {stats:?}"
        );
        assert!(stats.non_spanning_addition_percent < stats.largest_component_percent + 100.0);
    }

    #[test]
    fn incremental_stats_only_report_additions() {
        let g = generators::erdos_renyi_nm(300, 2_000, 5);
        let stats = collect_stats(&g, Scenario::Incremental, 0, 3);
        assert!(stats.non_spanning_addition_percent > 50.0);
        assert_eq!(stats.non_spanning_removal_percent, 0.0);
    }
}
