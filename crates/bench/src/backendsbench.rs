//! The backend-shootout benchmark tier, emitted as `BENCH_backends.json`.
//!
//! The [`dc_ett::DynamicForest`] trait makes the HDT core generic over its
//! forest representation; this tier answers the question that extraction
//! raises: *what does each backend actually cost, per workload shape?* Every
//! `(backend, variant)` combination the registry supports
//! ([`Variant::all_for_backend`]) runs three scenarios:
//!
//! * **read-storm** — the [`dc_workloads::presets::read_storm`] preset over
//!   power-law communities: the regime the ETT's O(1)-bump read protocol was
//!   built for, and where the LCT pays its O(log n) deposed-apex bumps per
//!   splay (`DESIGN.md` §12).
//! * **churn** — an update-heavy 20/40/40 mix over a ring of cliques: here
//!   the LCT's locality (splaying keeps hot paths shallow) competes against
//!   the ETT's randomized-treap restructuring.
//! * **bulk-load** — pure additions from an empty forest: sequential link
//!   cost, the backend's floor.
//!
//! Each cell reports throughput plus the p50/p99/p999 of per-operation
//! latency (one [`LatencyHistogram`] per worker, merged). Before anything is
//! timed, an **agreement pass** drives both backends' lock-free-read and
//! batch-engine variants against [`dynconn::RecomputeOracle`] on a shared
//! deterministic op stream — a backend that answers wrong produces numbers
//! not worth reporting, so the baseline records the outcome and the summary
//! binary's `DC_BENCH_BACKENDS_ONLY=1` step turns it into a CI gate.

use crate::report::{json_number, json_string};
use crate::stats::LatencyHistogram;
use dc_workloads::{presets, GeneratedWorkload, Op, Phase, Topology, WorkloadSpec};
use dynconn::{DynamicConnectivity, ForestBackend, RecomputeOracle, Variant};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Scenario parameters for the backend shootout.
#[derive(Clone, Debug)]
pub struct BackendsBenchConfig {
    /// Vertex budget for the generated topologies.
    pub n: usize,
    /// Power-law attachment degree (edge universe is roughly `n * m`).
    pub m_per_vertex: usize,
    /// Per-thread operation budget per scenario.
    pub ops_per_thread: usize,
    /// Concurrent threads.
    pub threads: usize,
    /// PRNG seed.
    pub seed: u64,
    /// Repetitions; best throughput per cell is kept.
    pub repeats: usize,
    /// Operations of the per-backend oracle agreement pass.
    pub agreement_ops: usize,
}

impl BackendsBenchConfig {
    /// The tracked configuration (shrunk under `DC_BENCH_QUICK=1`, thread
    /// count overridable via `DC_BENCH_THREADS`).
    pub fn from_env() -> Self {
        let quick = std::env::var("DC_BENCH_QUICK")
            .map(|v| v != "0")
            .unwrap_or(false);
        let mut config = if quick {
            BackendsBenchConfig {
                n: 512,
                m_per_vertex: 6,
                ops_per_thread: 2_000,
                threads: 4,
                seed: 0xBAC0,
                repeats: 1,
                agreement_ops: 2_000,
            }
        } else {
            BackendsBenchConfig {
                n: 8_192,
                m_per_vertex: 8,
                ops_per_thread: 20_000,
                threads: 8,
                seed: 0xBAC0,
                repeats: 3,
                agreement_ops: 8_000,
            }
        };
        if let Ok(v) = std::env::var("DC_BENCH_THREADS") {
            if let Some(t) = v
                .split(',')
                .filter_map(|s| s.trim().parse::<usize>().ok())
                .max()
            {
                config.threads = t.max(1);
            }
        }
        config
    }
}

/// One measured `(backend, variant, scenario)` cell.
#[derive(Clone, Debug)]
pub struct BackendCell {
    /// Forest backend label ("ett" / "lct").
    pub backend: String,
    /// The variant's display name.
    pub variant: String,
    /// The variant's paper number (1–14).
    pub number: u8,
    /// Operations per second.
    pub ops_per_sec: f64,
    /// Median per-operation latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th percentile, nanoseconds.
    pub p999_ns: u64,
}

/// One scenario: the graph it ran on and every `(backend, variant)` cell.
#[derive(Clone, Debug)]
pub struct BackendScenarioResult {
    /// Scenario key used in JSON ("read-storm", "churn", "bulk-load").
    pub name: String,
    /// Topology description.
    pub topology: String,
    /// Vertices of the universe.
    pub vertices: usize,
    /// Edges of the universe.
    pub edges: usize,
    /// Total operations per cell run.
    pub total_operations: usize,
    /// All cells, backend-major in paper-number order.
    pub cells: Vec<BackendCell>,
}

impl BackendScenarioResult {
    /// The cells of one backend, in paper-number order.
    pub fn backend_cells(&self, backend: &str) -> Vec<&BackendCell> {
        self.cells.iter().filter(|c| c.backend == backend).collect()
    }
}

/// The oracle agreement outcome for one backend.
#[derive(Clone, Debug)]
pub struct AgreementResult {
    /// Forest backend label.
    pub backend: String,
    /// Queries compared against the oracle.
    pub checked: u64,
    /// Whether every compared answer agreed.
    pub passed: bool,
}

/// The full backend-shootout measurement, serialized as
/// `BENCH_backends.json`.
#[derive(Clone, Debug, Default)]
pub struct BackendsBaseline {
    /// Short git revision.
    pub git_rev: String,
    /// The configuration the numbers were measured at.
    pub config: Option<BackendsBenchConfig>,
    /// Per-backend oracle agreement outcomes.
    pub agreement: Vec<AgreementResult>,
    /// All scenarios.
    pub scenarios: Vec<BackendScenarioResult>,
}

impl BackendsBaseline {
    /// The scenario named `name`, if measured.
    pub fn scenario(&self, name: &str) -> Option<&BackendScenarioResult> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// True when every backend's agreement pass ran and agreed — the CI
    /// gate behind `DC_BENCH_BACKENDS_ONLY=1`.
    pub fn agreement_passes(&self) -> bool {
        self.agreement.len() == ForestBackend::all().len()
            && self.agreement.iter().all(|a| a.checked > 0 && a.passed)
    }
}

/// A tiny deterministic generator for the agreement stream (the bench must
/// not perturb the measured runs' `rand` seeding).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Drives the backend's lock-free-read and batch-engine variants against
/// the BFS oracle on one deterministic op stream.
fn agreement_pass(backend: ForestBackend, ops: usize, seed: u64) -> AgreementResult {
    let n = 128usize;
    let mut checked = 0u64;
    let mut passed = true;
    for variant in [
        Variant::CoarseNonBlockingReads,
        Variant::FlatCombiningNonBlockingReads,
        Variant::BatchEngine,
    ] {
        let dc = variant.build_with(n, backend);
        let oracle = RecomputeOracle::new(n);
        let mut state = seed ^ (variant.paper_number() as u64);
        for _ in 0..ops {
            let roll = splitmix(&mut state);
            let u = (splitmix(&mut state) % n as u64) as u32;
            let v = (splitmix(&mut state) % n as u64) as u32;
            match roll % 100 {
                0..=44 => {
                    dc.add_edge(u, v);
                    oracle.add_edge(u, v);
                }
                45..=74 => {
                    dc.remove_edge(u, v);
                    oracle.remove_edge(u, v);
                }
                _ => {
                    checked += 1;
                    if dc.connected(u, v) != oracle.connected(u, v) {
                        eprintln!(
                            "agreement FAILED: {}@{} diverged at connected({u}, {v})",
                            variant.name(),
                            backend.label()
                        );
                        passed = false;
                    }
                }
            }
        }
    }
    AgreementResult {
        backend: backend.label().to_string(),
        checked,
        passed,
    }
}

/// Runs one single-phase workload to completion, each worker recording
/// per-operation latency into its own histogram; returns throughput plus
/// the merged percentiles.
fn measure(
    structure: &dyn DynamicConnectivity,
    workload: &GeneratedWorkload,
) -> (f64, LatencyHistogram) {
    for edge in &workload.preload {
        structure.add_edge(edge.u(), edge.v());
    }
    let phase = &workload.phases[0];
    let start_flag = AtomicBool::new(false);
    let started = Instant::now();
    let mut merged = LatencyHistogram::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = phase
            .per_thread
            .iter()
            .map(|ops| {
                let start_flag = &start_flag;
                scope.spawn(move || {
                    let mut histogram = LatencyHistogram::new();
                    while !start_flag.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                    for op in ops {
                        let before = Instant::now();
                        match *op {
                            Op::Add(u, v) => structure.add_edge(u, v),
                            Op::Remove(u, v) => structure.remove_edge(u, v),
                            Op::Query(u, v) => {
                                std::hint::black_box(structure.connected(u, v));
                            }
                        }
                        histogram.record(before.elapsed().as_nanos() as u64);
                    }
                    histogram
                })
            })
            .collect();
        start_flag.store(true, Ordering::Release);
        for handle in handles {
            merged.merge(&handle.join().expect("backend bench worker panicked"));
        }
    });
    let elapsed = started.elapsed();
    let operations = phase.total_operations();
    (operations as f64 / elapsed.as_secs_f64().max(1e-9), merged)
}

/// Runs one scenario over every `(backend, variant)` combination, keeping
/// the best-throughput cell across `repeats`.
fn run_backend_scenario(
    name: &str,
    topology: &Topology,
    graph: &dc_graph::Graph,
    workload: &GeneratedWorkload,
    repeats: usize,
) -> BackendScenarioResult {
    assert_eq!(
        workload.phases.len(),
        1,
        "backend scenarios are single-phase by construction"
    );
    let mut cells: Vec<BackendCell> = Vec::new();
    for _ in 0..repeats.max(1) {
        for &backend in ForestBackend::all() {
            for variant in Variant::all_for_backend(backend) {
                let structure = variant.build_with(graph.num_vertices(), backend);
                let (ops_per_sec, histogram) = measure(structure.as_ref(), workload);
                let fresh = BackendCell {
                    backend: backend.label().to_string(),
                    variant: variant.name().to_string(),
                    number: variant.paper_number(),
                    ops_per_sec,
                    p50_ns: histogram.p50(),
                    p99_ns: histogram.p99(),
                    p999_ns: histogram.p999(),
                };
                match cells
                    .iter_mut()
                    .find(|c| c.backend == fresh.backend && c.number == fresh.number)
                {
                    Some(cell) => {
                        if fresh.ops_per_sec > cell.ops_per_sec {
                            *cell = fresh;
                        }
                    }
                    None => cells.push(fresh),
                }
            }
        }
    }
    BackendScenarioResult {
        name: name.to_string(),
        topology: topology.name(),
        vertices: graph.num_vertices(),
        edges: graph.num_edges(),
        total_operations: workload.total_operations(),
        cells,
    }
}

/// Measures the three backend-shootout scenarios across every supported
/// `(backend, variant)` combination, after the oracle agreement pass.
pub fn run_backends_bench(config: &BackendsBenchConfig) -> BackendsBaseline {
    dc_batch::register_variant();
    let mut baseline = BackendsBaseline {
        git_rev: crate::ettbench::git_rev(),
        config: Some(config.clone()),
        ..Default::default()
    };

    // --- the agreement pass gates everything below -------------------------
    for &backend in ForestBackend::all() {
        baseline
            .agreement
            .push(agreement_pass(backend, config.agreement_ops, config.seed));
    }

    // --- read-storm: the hint-protocol regime ------------------------------
    let community_n = 256.min(config.n / 2).max(8);
    let topo = Topology::PowerLawCommunities {
        communities: (config.n / community_n).max(1),
        community_n,
        m_per_vertex: config.m_per_vertex,
    };
    let graph = topo.build(config.seed);
    let workload = presets::read_storm(&graph, config.threads, config.ops_per_thread, config.seed);
    baseline.scenarios.push(run_backend_scenario(
        "read-storm",
        &topo,
        &graph,
        &workload,
        config.repeats,
    ));

    // --- churn: the restructuring-heavy regime -----------------------------
    let clique_size = 8;
    let topo = Topology::RingOfCliques {
        cliques: (config.n / clique_size).max(2),
        clique_size,
        extra_bridges: config.n / 16,
    };
    let graph = topo.build(config.seed ^ 0xC4);
    let workload = WorkloadSpec::new(config.threads, config.seed ^ 0xC4)
        .preload(0.5)
        .phase(
            Phase::new("churn", config.ops_per_thread)
                .mix(20, 40, 40)
                .zipf(0.8),
        )
        .generate(&graph);
    baseline.scenarios.push(run_backend_scenario(
        "churn",
        &topo,
        &graph,
        &workload,
        config.repeats,
    ));

    // --- bulk-load: pure additions from empty ------------------------------
    let topo = Topology::PowerLaw {
        n: config.n,
        m_per_vertex: config.m_per_vertex,
    };
    let graph = topo.build(config.seed ^ 0xB1);
    let workload = WorkloadSpec::new(config.threads, config.seed ^ 0xB1)
        .phase(Phase::new("bulk-load", config.ops_per_thread).mix(0, 100, 0))
        .generate(&graph);
    baseline.scenarios.push(run_backend_scenario(
        "bulk-load",
        &topo,
        &graph,
        &workload,
        config.repeats,
    ));

    baseline
}

impl BackendsBaseline {
    /// Renders the measurement as pretty JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"dc-bench/backends/v1\",\n");
        out.push_str(&format!("  \"git_rev\": {},\n", json_string(&self.git_rev)));
        if let Some(config) = &self.config {
            out.push_str("  \"config\": {\n");
            out.push_str(&format!("    \"vertices\": {},\n", config.n));
            out.push_str(&format!("    \"m_per_vertex\": {},\n", config.m_per_vertex));
            out.push_str(&format!(
                "    \"ops_per_thread\": {},\n",
                config.ops_per_thread
            ));
            out.push_str(&format!("    \"threads\": {},\n", config.threads));
            out.push_str(&format!("    \"seed\": {},\n", config.seed));
            out.push_str(&format!("    \"repeats_best_of\": {},\n", config.repeats));
            out.push_str(&format!(
                "    \"agreement_ops\": {}\n",
                config.agreement_ops
            ));
            out.push_str("  },\n");
        }
        out.push_str("  \"agreement\": {");
        for (ai, agreement) in self.agreement.iter().enumerate() {
            if ai > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {{ \"checked\": {}, \"passed\": {} }}",
                json_string(&agreement.backend),
                agreement.checked,
                agreement.passed
            ));
        }
        out.push_str("\n  },\n");
        out.push_str("  \"scenarios\": {");
        for (si, scenario) in self.scenarios.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {{\n", json_string(&scenario.name)));
            out.push_str(&format!(
                "      \"topology\": {},\n",
                json_string(&scenario.topology)
            ));
            out.push_str(&format!("      \"vertices\": {},\n", scenario.vertices));
            out.push_str(&format!("      \"edges\": {},\n", scenario.edges));
            out.push_str(&format!(
                "      \"total_operations\": {},\n",
                scenario.total_operations
            ));
            out.push_str("      \"backends\": {");
            let mut first_backend = true;
            for &backend in ForestBackend::all() {
                let cells = scenario.backend_cells(backend.label());
                if !first_backend {
                    out.push(',');
                }
                first_backend = false;
                out.push_str(&format!("\n        \"{}\": {{", backend.label()));
                for (ci, cell) in cells.iter().enumerate() {
                    if ci > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "\n          {}: {{ \"number\": {}, \"ops_per_sec\": {}, \
                         \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {} }}",
                        json_string(&cell.variant),
                        cell.number,
                        json_number(cell.ops_per_sec),
                        cell.p50_ns,
                        cell.p99_ns,
                        cell.p999_ns
                    ));
                }
                out.push_str("\n        }");
            }
            out.push_str("\n      }\n    }");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders aligned text tables, one per scenario.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let threads = self.config.as_ref().map(|c| c.threads).unwrap_or(0);
        out.push_str(&format!(
            "== Backend shootout ({} threads, rev {}) ==\n",
            threads, self.git_rev
        ));
        for agreement in &self.agreement {
            out.push_str(&format!(
                "agreement[{}]: {} checks, {}\n",
                agreement.backend,
                agreement.checked,
                if agreement.passed { "passed" } else { "FAILED" }
            ));
        }
        for scenario in &self.scenarios {
            out.push_str(&format!(
                "\n-- {} on {} (|V|={}, |E|={}, {} ops) --\n",
                scenario.name,
                scenario.topology,
                scenario.vertices,
                scenario.edges,
                scenario.total_operations
            ));
            out.push_str(&format!(
                "{:<6}{:<44}{:>13}{:>10}{:>10}{:>10}\n",
                "back", "variant", "ops/s", "p50 ns", "p99 ns", "p999 ns"
            ));
            for cell in &scenario.cells {
                out.push_str(&format!(
                    "{:<6}{:<44}{:>13.0}{:>10}{:>10}{:>10}\n",
                    cell.backend,
                    cell.variant,
                    cell.ops_per_sec,
                    cell.p50_ns,
                    cell.p99_ns,
                    cell.p999_ns
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_bench_runs_on_a_tiny_instance() {
        let config = BackendsBenchConfig {
            n: 96,
            m_per_vertex: 4,
            ops_per_thread: 300,
            threads: 2,
            seed: 7,
            repeats: 1,
            agreement_ops: 400,
        };
        let baseline = run_backends_bench(&config);
        assert!(baseline.agreement_passes(), "{:?}", baseline.agreement);
        let names: Vec<&str> = baseline.scenarios.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["read-storm", "churn", "bulk-load"]);
        for scenario in &baseline.scenarios {
            let ett = scenario.backend_cells("ett");
            let lct = scenario.backend_cells("lct");
            assert_eq!(ett.len(), 14, "{}: ETT runs every variant", scenario.name);
            assert_eq!(
                lct.len(),
                Variant::all_for_backend(ForestBackend::Lct).len(),
                "{}: LCT runs its supported subset",
                scenario.name
            );
            for cell in &scenario.cells {
                assert!(cell.ops_per_sec > 0.0, "{}@{}", cell.variant, cell.backend);
                assert!(
                    cell.p50_ns <= cell.p99_ns,
                    "{}@{}",
                    cell.variant,
                    cell.backend
                );
                assert!(
                    cell.p99_ns <= cell.p999_ns,
                    "{}@{}",
                    cell.variant,
                    cell.backend
                );
            }
        }
        let json = baseline.to_json();
        assert!(json.contains("dc-bench/backends/v1"));
        assert!(json.contains("\"agreement\""));
        assert!(json.contains("\"lct\""));
        assert!(json.contains("p999_ns"));
        assert!(baseline.render_text().contains("agreement[lct]"));
    }
}
