//! The workload-subsystem benchmark, emitted as `BENCH_workloads.json`.
//!
//! Where the figure binaries reproduce the paper's three §5.1 scenarios,
//! this module measures the scenarios the `dc_workloads` subsystem opens
//! up, across **every** variant (the paper's thirteen plus the `dc_batch`
//! engine as number 14):
//!
//! * **power-law + Zipf** — churny, read-mixed traffic whose hot-edge
//!   distribution is Zipf-skewed, over a preferential-attachment graph:
//!   contention concentrates on hub edges the way social-graph traffic
//!   does.
//! * **phased lifecycle** — `load → churn-burst → read-storm → teardown`
//!   over a ring of cliques, with *per-phase* throughput and lock-wait
//!   statistics (a structure that wins the read-storm can still lose the
//!   teardown, where every removal is a critical bridge candidate).
//! * **sliding window** — a temporal stream over a grid universe: edge `i`
//!   in, edge `i - window` out, queries over recent endpoints; the live
//!   set stays small and recency-biased.
//! * **trace replay** — the power-law workload frozen into a
//!   `dc_workloads::Trace` and replayed from bytes; the cell proves the
//!   record/replay path costs nothing and the baseline double-decodes the
//!   trace to assert byte-for-byte determinism (`replay_deterministic`).
//!
//! Every cell carries ops/s, active-time rate, lock-wait totals from
//! [`dc_sync::waitstats`] and sampled per-operation latency percentiles
//! (p50/p99/p999, 1-in-16 sampled), keyed by phase name.

use crate::report::{json_number, json_string};
use crate::stats::LatencyHistogram;
use dc_sync::waitstats;
use dc_workloads::{presets, GeneratedWorkload, Op, Topology, Trace};
use dynconn::{DynamicConnectivity, Variant};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Scenario parameters for the workload benchmark.
#[derive(Clone, Debug)]
pub struct WorkloadBenchConfig {
    /// Vertex budget for the generated topologies.
    pub n: usize,
    /// Per-thread operation budget per phase.
    pub ops_per_thread: usize,
    /// Concurrent threads.
    pub threads: usize,
    /// Live-window size of the sliding-window scenario.
    pub window: usize,
    /// PRNG seed.
    pub seed: u64,
    /// Repetitions; best *total* throughput per (scenario, variant) is kept.
    pub repeats: usize,
}

impl WorkloadBenchConfig {
    /// The tracked configuration (shrunk under `DC_BENCH_QUICK=1`, thread
    /// count overridable via `DC_BENCH_THREADS`).
    pub fn from_env() -> Self {
        let quick = std::env::var("DC_BENCH_QUICK")
            .map(|v| v != "0")
            .unwrap_or(false);
        let mut config = if quick {
            WorkloadBenchConfig {
                n: 512,
                ops_per_thread: 1_000,
                threads: 4,
                window: 128,
                seed: 0x50AD5,
                repeats: 1,
            }
        } else {
            WorkloadBenchConfig {
                n: 4_096,
                ops_per_thread: 10_000,
                threads: 8,
                window: 1_024,
                seed: 0x50AD5,
                repeats: 2,
            }
        };
        if let Ok(v) = std::env::var("DC_BENCH_THREADS") {
            if let Some(t) = v
                .split(',')
                .filter_map(|s| s.trim().parse::<usize>().ok())
                .max()
            {
                config.threads = t.max(1);
            }
        }
        config
    }
}

/// One measured phase of one variant under one scenario.
#[derive(Clone, Debug)]
pub struct PhaseCell {
    /// Phase name (from the workload spec).
    pub phase: String,
    /// Operations executed in the phase (all threads).
    pub operations: usize,
    /// Operations per second.
    pub ops_per_sec: f64,
    /// Active time rate in percent.
    pub active_time_percent: f64,
    /// Total lock-wait time across threads, milliseconds.
    pub wait_ms: f64,
    /// Sampled per-operation latency: median, nanoseconds.
    pub p50_nanos: u64,
    /// Sampled per-operation latency: 99th percentile, nanoseconds.
    pub p99_nanos: u64,
    /// Sampled per-operation latency: 99.9th percentile, nanoseconds.
    pub p999_nanos: u64,
}

/// One variant's measurement under one scenario: per-phase cells plus the
/// whole-workload throughput.
#[derive(Clone, Debug)]
pub struct VariantRun {
    /// The variant's display name.
    pub variant: String,
    /// The variant's paper number (1–14).
    pub number: u8,
    /// Whole-workload operations per second (phases summed).
    pub total_ops_per_sec: f64,
    /// The per-phase measurements, in phase order.
    pub phases: Vec<PhaseCell>,
}

/// One scenario: the graph it ran on and all variant runs.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Scenario key used in JSON ("powerlaw-zipf", ...).
    pub name: String,
    /// Topology description.
    pub topology: String,
    /// Vertices of the universe.
    pub vertices: usize,
    /// Edges of the universe.
    pub edges: usize,
    /// Total operations per variant run.
    pub total_operations: usize,
    /// All variant runs.
    pub runs: Vec<VariantRun>,
}

/// The full workload measurement, serialized as `BENCH_workloads.json`.
#[derive(Clone, Debug, Default)]
pub struct WorkloadBaseline {
    /// Short git revision.
    pub git_rev: String,
    /// The configuration the numbers were measured at.
    pub config: Option<WorkloadBenchConfig>,
    /// All scenarios.
    pub scenarios: Vec<ScenarioResult>,
    /// Size of the recorded trace in bytes (trace-replay scenario).
    pub trace_bytes: usize,
    /// Whether decoding the recorded trace twice yielded identical
    /// operation sequences (asserted, so always `true` in emitted files).
    pub replay_deterministic: bool,
}

/// One operation in this many is individually timed for the percentile
/// columns; the rest run untimed so the `Instant` calls stay off the
/// throughput measurement.
const LATENCY_SAMPLE_EVERY: usize = 16;

fn run_ops(structure: &dyn DynamicConnectivity, ops: &[Op]) -> LatencyHistogram {
    let mut hist = LatencyHistogram::new();
    for (i, op) in ops.iter().enumerate() {
        let start = (i % LATENCY_SAMPLE_EVERY == 0).then(Instant::now);
        match *op {
            Op::Add(u, v) => structure.add_edge(u, v),
            Op::Remove(u, v) => structure.remove_edge(u, v),
            Op::Query(u, v) => {
                std::hint::black_box(structure.connected(u, v));
            }
        }
        if let Some(start) = start {
            hist.record(start.elapsed().as_nanos() as u64);
        }
    }
    hist
}

/// Preloads the workload and runs its phases back-to-back with a barrier
/// between them, measuring each phase separately.
fn run_phased(structure: &dyn DynamicConnectivity, workload: &GeneratedWorkload) -> Vec<PhaseCell> {
    for edge in &workload.preload {
        structure.add_edge(edge.u(), edge.v());
    }
    let threads = workload.threads();
    workload
        .phases
        .iter()
        .map(|phase| {
            waitstats::reset();
            waitstats::set_enabled(true);
            let start_flag = AtomicBool::new(false);
            let started = Instant::now();
            let mut latency = LatencyHistogram::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = phase
                    .per_thread
                    .iter()
                    .map(|ops| {
                        let start_flag = &start_flag;
                        scope.spawn(move || {
                            while !start_flag.load(Ordering::Acquire) {
                                std::hint::spin_loop();
                            }
                            run_ops(structure, ops)
                        })
                    })
                    .collect();
                start_flag.store(true, Ordering::Release);
                for handle in handles {
                    latency.merge(&handle.join().expect("workload worker panicked"));
                }
            });
            let elapsed = started.elapsed();
            waitstats::set_enabled(false);
            let operations = phase.total_operations();
            let total_thread_nanos = (elapsed.as_nanos() as u64).saturating_mul(threads as u64);
            PhaseCell {
                phase: phase.name.clone(),
                operations,
                ops_per_sec: operations as f64 / elapsed.as_secs_f64().max(1e-9),
                active_time_percent: waitstats::active_time_rate_percent(total_thread_nanos),
                wait_ms: waitstats::total_wait_nanos() as f64 / 1e6,
                p50_nanos: latency.p50(),
                p99_nanos: latency.p99(),
                p999_nanos: latency.p999(),
            }
        })
        .collect()
}

/// Whole-workload ops/s from per-phase cells (total ops over summed time).
fn total_ops_per_sec(phases: &[PhaseCell]) -> f64 {
    let ops: usize = phases.iter().map(|p| p.operations).sum();
    let secs: f64 = phases
        .iter()
        .map(|p| p.operations as f64 / p.ops_per_sec.max(1e-9))
        .sum();
    ops as f64 / secs.max(1e-9)
}

/// Runs `workload` over every variant (`repeats` times, best total kept).
fn run_scenario(
    name: &str,
    topology: &Topology,
    graph: &dc_graph::Graph,
    workload: &GeneratedWorkload,
    variants: &[Variant],
    repeats: usize,
) -> ScenarioResult {
    let mut runs: Vec<VariantRun> = Vec::new();
    for _ in 0..repeats.max(1) {
        for &variant in variants {
            let structure = variant.build(graph.num_vertices());
            let phases = run_phased(structure.as_ref(), workload);
            let total = total_ops_per_sec(&phases);
            match runs.iter_mut().find(|r| r.variant == variant.name()) {
                Some(run) if run.total_ops_per_sec >= total => {}
                Some(run) => {
                    run.total_ops_per_sec = total;
                    run.phases = phases;
                }
                None => runs.push(VariantRun {
                    variant: variant.name().to_string(),
                    number: variant.paper_number(),
                    total_ops_per_sec: total,
                    phases,
                }),
            }
        }
    }
    ScenarioResult {
        name: name.to_string(),
        topology: topology.name(),
        vertices: graph.num_vertices(),
        edges: graph.num_edges(),
        total_operations: workload.total_operations(),
        runs,
    }
}

/// Measures all four workload scenarios across all fourteen variants.
pub fn run_workload_bench(config: &WorkloadBenchConfig) -> WorkloadBaseline {
    dc_batch::register_variant();
    // Paper numbering order, extension engine last — `by_paper_number` keeps
    // the iteration explicit about which engines exist.
    let variants: Vec<Variant> = (1..=14)
        .filter_map(Variant::by_paper_number)
        .filter(|v| *v != Variant::BatchEngine || dynconn::batch_builder_registered())
        .collect();
    let mut baseline = WorkloadBaseline {
        git_rev: crate::ettbench::git_rev(),
        config: Some(config.clone()),
        ..Default::default()
    };

    // --- power-law + Zipf -------------------------------------------------
    let topo = Topology::PowerLaw {
        n: config.n,
        m_per_vertex: 4,
    };
    let graph = topo.build(config.seed);
    let powerlaw_workload = dc_workloads::WorkloadSpec::new(config.threads, config.seed)
        .preload(0.5)
        .phase(
            dc_workloads::Phase::new("zipf-churn", config.ops_per_thread)
                .mix(50, 25, 25)
                .zipf(0.99),
        )
        .generate(&graph);
    baseline.scenarios.push(run_scenario(
        "powerlaw-zipf",
        &topo,
        &graph,
        &powerlaw_workload,
        &variants,
        config.repeats,
    ));

    // --- trace replay of the power-law workload ---------------------------
    // Record, decode twice, assert byte-level determinism, then measure the
    // replayed (decoded) workload — proving a trace round-trip changes
    // neither the operations nor (up to noise) the measured cost.
    let trace = Trace::record(&powerlaw_workload, config.seed, graph.num_vertices() as u32);
    let bytes = trace.to_bytes();
    let replay_a = Trace::from_bytes(&bytes).expect("recorded trace must decode");
    let replay_b = Trace::from_bytes(&bytes).expect("recorded trace must decode");
    assert_eq!(
        replay_a, replay_b,
        "decoding the same trace twice must yield identical operation sequences"
    );
    baseline.trace_bytes = bytes.len();
    baseline.replay_deterministic = true;
    let replayed = GeneratedWorkload {
        preload: replay_a.preload.clone(),
        phases: vec![dc_workloads::PhaseStream {
            name: "replay".to_string(),
            per_thread: replay_a.per_thread.clone(),
        }],
    };
    baseline.scenarios.push(run_scenario(
        "trace-replay",
        &topo,
        &graph,
        &replayed,
        &variants,
        config.repeats,
    ));

    // --- phased lifecycle over a ring of cliques ---------------------------
    let clique_size = 8;
    let topo = Topology::RingOfCliques {
        cliques: (config.n / clique_size).max(2),
        clique_size,
        extra_bridges: config.n / 16,
    };
    let graph = topo.build(config.seed ^ 0x11FE);
    let workload = presets::lifecycle(&graph, config.threads, config.ops_per_thread, config.seed);
    baseline.scenarios.push(run_scenario(
        "phased-lifecycle",
        &topo,
        &graph,
        &workload,
        &variants,
        config.repeats,
    ));

    // --- temporal sliding window over a grid universe ----------------------
    let side = (config.n as f64).sqrt() as usize;
    let topo = Topology::Grid {
        rows: side.max(2),
        cols: side.max(2),
    };
    let graph = topo.build(config.seed);
    // Clamp the window to half the per-thread stream so the scenario
    // actually *slides* — evictions must fire during the stream, not only
    // in the final drain — whatever graph size the config produced.
    let per_thread_stream = (graph.num_edges() / config.threads).max(2);
    let window = config.window.clamp(1, per_thread_stream / 2);
    let workload = presets::sliding_window(&graph, window, 20, config.threads, config.seed);
    baseline.scenarios.push(run_scenario(
        "sliding-window",
        &topo,
        &graph,
        &workload,
        &variants,
        config.repeats,
    ));

    baseline
}

impl WorkloadBaseline {
    /// Renders the measurement as pretty JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"dc-bench/workloads/v2\",\n");
        out.push_str(&format!("  \"git_rev\": {},\n", json_string(&self.git_rev)));
        if let Some(config) = &self.config {
            out.push_str("  \"config\": {\n");
            out.push_str(&format!("    \"vertices\": {},\n", config.n));
            out.push_str(&format!(
                "    \"ops_per_thread_per_phase\": {},\n",
                config.ops_per_thread
            ));
            out.push_str(&format!("    \"threads\": {},\n", config.threads));
            out.push_str(&format!("    \"window\": {},\n", config.window));
            out.push_str(&format!("    \"seed\": {},\n", config.seed));
            out.push_str(&format!("    \"repeats_best_of\": {}\n", config.repeats));
            out.push_str("  },\n");
        }
        out.push_str(&format!("  \"trace_bytes\": {},\n", self.trace_bytes));
        out.push_str(&format!(
            "  \"replay_deterministic\": {},\n",
            self.replay_deterministic
        ));
        out.push_str("  \"scenarios\": {");
        for (si, scenario) in self.scenarios.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {{\n", json_string(&scenario.name)));
            out.push_str(&format!(
                "      \"topology\": {},\n",
                json_string(&scenario.topology)
            ));
            out.push_str(&format!("      \"vertices\": {},\n", scenario.vertices));
            out.push_str(&format!("      \"edges\": {},\n", scenario.edges));
            out.push_str(&format!(
                "      \"total_operations\": {},\n",
                scenario.total_operations
            ));
            out.push_str("      \"variants\": {");
            for (vi, run) in scenario.runs.iter().enumerate() {
                if vi > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n        {}: {{\n", json_string(&run.variant)));
                out.push_str(&format!("          \"number\": {},\n", run.number));
                out.push_str(&format!(
                    "          \"total_ops_per_sec\": {},\n",
                    json_number(run.total_ops_per_sec)
                ));
                out.push_str("          \"phases\": {");
                for (pi, cell) in run.phases.iter().enumerate() {
                    if pi > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "\n            {}: {{ \"operations\": {}, \"ops_per_sec\": {}, \
                         \"active_time_percent\": {}, \"wait_ms\": {}, \
                         \"p50_nanos\": {}, \"p99_nanos\": {}, \"p999_nanos\": {} }}",
                        json_string(&cell.phase),
                        cell.operations,
                        json_number(cell.ops_per_sec),
                        json_number(cell.active_time_percent),
                        json_number(cell.wait_ms),
                        cell.p50_nanos,
                        cell.p99_nanos,
                        cell.p999_nanos
                    ));
                }
                out.push_str("\n          }\n        }");
            }
            out.push_str("\n      }\n    }");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders aligned text tables, one per scenario.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let threads = self.config.as_ref().map(|c| c.threads).unwrap_or(0);
        out.push_str(&format!(
            "== Workload scenarios ({} threads, rev {}) ==\n",
            threads, self.git_rev
        ));
        out.push_str(&format!(
            "trace: {} bytes, replay deterministic: {}\n",
            self.trace_bytes, self.replay_deterministic
        ));
        for scenario in &self.scenarios {
            out.push_str(&format!(
                "\n-- {} on {} (|V|={}, |E|={}, {} ops) --\n",
                scenario.name,
                scenario.topology,
                scenario.vertices,
                scenario.edges,
                scenario.total_operations
            ));
            let phase_names: Vec<&str> = scenario
                .runs
                .first()
                .map(|r| r.phases.iter().map(|p| p.phase.as_str()).collect())
                .unwrap_or_default();
            out.push_str(&format!("{:<44}{:>13}", "variant", "total ops/s"));
            for name in &phase_names {
                out.push_str(&format!("{:>13}", truncate(name, 12)));
            }
            out.push('\n');
            let mut sorted: Vec<&VariantRun> = scenario.runs.iter().collect();
            sorted.sort_by(|a, b| b.total_ops_per_sec.total_cmp(&a.total_ops_per_sec));
            for run in sorted {
                out.push_str(&format!(
                    "{:<44}{:>13.0}",
                    run.variant, run.total_ops_per_sec
                ));
                for cell in &run.phases {
                    out.push_str(&format!("{:>13.0}", cell.ops_per_sec));
                }
                out.push('\n');
            }
        }
        out
    }
}

/// First `max` *characters* of `s` (phase names are caller-supplied, so a
/// byte-index slice could land inside a multi-byte character and panic).
fn truncate(s: &str, max: usize) -> &str {
    match s.char_indices().nth(max) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_bench_runs_on_a_tiny_instance() {
        let config = WorkloadBenchConfig {
            n: 96,
            ops_per_thread: 120,
            threads: 2,
            window: 16,
            seed: 7,
            repeats: 1,
        };
        let baseline = run_workload_bench(&config);
        assert_eq!(baseline.scenarios.len(), 4);
        let names: Vec<&str> = baseline.scenarios.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "powerlaw-zipf",
                "trace-replay",
                "phased-lifecycle",
                "sliding-window"
            ]
        );
        assert!(baseline.replay_deterministic);
        assert!(baseline.trace_bytes > 0);
        for scenario in &baseline.scenarios {
            // All fourteen variants, every phase measured.
            assert_eq!(scenario.runs.len(), 14, "{}", scenario.name);
            for run in &scenario.runs {
                assert!(run.total_ops_per_sec > 0.0, "{}", run.variant);
                assert!(!run.phases.is_empty());
                for cell in &run.phases {
                    assert!(cell.ops_per_sec > 0.0);
                    assert!(cell.operations > 0);
                    // 1-in-16 sampling over >= 100 ops always catches
                    // something, and the quantiles must be ordered.
                    assert!(cell.p50_nanos > 0, "{}/{}", run.variant, cell.phase);
                    assert!(cell.p50_nanos <= cell.p99_nanos);
                    assert!(cell.p99_nanos <= cell.p999_nanos);
                }
            }
        }
        let lifecycle = &baseline.scenarios[2];
        assert_eq!(lifecycle.runs[0].phases.len(), 4);
        let json = baseline.to_json();
        assert!(json.contains("dc-bench/workloads/v2"));
        assert!(json.contains("p999_nanos"));
        assert!(json.contains("replay_deterministic"));
        assert!(json.contains("zipf-churn"));
        assert!(json.contains("read-storm"));
        assert!(baseline.render_text().contains("sliding-window"));
    }
}
