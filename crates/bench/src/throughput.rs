//! The multi-threaded throughput harness.
//!
//! Mirrors the paper's JMH methodology: the structure is preloaded, each
//! thread executes its pre-generated operation stream, and the score is the
//! total number of operations divided by the wall-clock time of the parallel
//! phase (ops/ms).  Lock-wait time is collected through
//! [`dc_sync::waitstats`] to compute the *active time rate* of Figures 7, 8,
//! 11 and 12.

use crate::scenario::{Operation, Workload};
use crate::stats::LatencyHistogram;
use dc_sync::waitstats;
use dynconn::DynamicConnectivity;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Every `LATENCY_SAMPLE_EVERY`-th operation of each worker is timed
/// individually and recorded into that worker's [`LatencyHistogram`].
/// Sampling (instead of timing every op) keeps the clock-read overhead off
/// the measured throughput; 1-in-16 still yields thousands of samples per
/// cell, plenty for p99 at the tracked op budgets.
const LATENCY_SAMPLE_EVERY: usize = 16;

/// The result of one throughput measurement.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputResult {
    /// Number of threads used.
    pub threads: usize,
    /// Total operations executed during the measured phase.
    pub operations: usize,
    /// Wall-clock duration of the measured phase in milliseconds.
    pub millis: f64,
    /// Throughput in operations per millisecond (the paper's y-axis).
    pub ops_per_ms: f64,
    /// Active time rate in percent: `100 * (1 - lock_wait / total_cpu_time)`.
    pub active_time_percent: f64,
    /// Total nanoseconds all threads spent blocked on instrumented locks
    /// during the measured phase (the raw counter behind the rate).
    pub wait_nanos: u64,
    /// Number of blocking acquisitions recorded during the measured phase.
    pub wait_events: u64,
    /// Sampled per-operation latency distribution (1-in-16 operations per
    /// worker, merged across workers); `p50()`/`p99()`/`p999()` give the
    /// tail alongside the mean the ops/ms figure implies.
    pub latency: LatencyHistogram,
}

/// Preloads `workload.preload` into `structure` and runs the per-thread
/// operation streams concurrently, returning the measured throughput.
pub fn run_throughput(
    structure: &dyn DynamicConnectivity,
    workload: &Workload,
) -> ThroughputResult {
    for edge in &workload.preload {
        structure.add_edge(edge.u(), edge.v());
    }
    let threads = workload.per_thread.len();
    let total_ops = workload.total_operations();

    waitstats::reset();
    waitstats::set_enabled(true);
    let start_flag = AtomicBool::new(false);
    let started = Instant::now();

    let latency = std::thread::scope(|scope| {
        let handles: Vec<_> = workload
            .per_thread
            .iter()
            .map(|ops| {
                let start_flag = &start_flag;
                scope.spawn(move || {
                    // Spin until every worker is spawned so the measurement
                    // window covers only concurrent execution.
                    while !start_flag.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                    run_ops(structure, ops)
                })
            })
            .collect();
        start_flag.store(true, Ordering::Release);
        let mut merged = LatencyHistogram::new();
        for handle in handles {
            merged.merge(&handle.join().expect("benchmark worker panicked"));
        }
        merged
    });

    let elapsed = started.elapsed();
    waitstats::set_enabled(false);
    let millis = elapsed.as_secs_f64() * 1e3;
    let total_thread_nanos = (elapsed.as_nanos() as u64).saturating_mul(threads as u64);
    ThroughputResult {
        threads,
        operations: total_ops,
        millis,
        ops_per_ms: total_ops as f64 / millis.max(1e-9),
        active_time_percent: waitstats::active_time_rate_percent(total_thread_nanos),
        wait_nanos: waitstats::total_wait_nanos(),
        wait_events: waitstats::wait_events(),
        latency,
    }
}

fn run_ops(structure: &dyn DynamicConnectivity, ops: &[Operation]) -> LatencyHistogram {
    let mut latency = LatencyHistogram::new();
    for (i, op) in ops.iter().enumerate() {
        let sampled = i % LATENCY_SAMPLE_EVERY == 0;
        let before = if sampled { Some(Instant::now()) } else { None };
        match *op {
            Operation::Add(u, v) => structure.add_edge(u, v),
            Operation::Remove(u, v) => structure.remove_edge(u, v),
            Operation::Query(u, v) => {
                std::hint::black_box(structure.connected(u, v));
            }
        }
        if let Some(before) = before {
            latency.record(before.elapsed().as_nanos() as u64);
        }
    }
    latency
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use dc_graph::generators;
    use dynconn::Variant;

    #[test]
    fn throughput_run_executes_all_operations() {
        let graph = generators::erdos_renyi_nm(100, 300, 1);
        let workload = Workload::generate(
            &graph,
            Scenario::RandomSubset { read_percent: 80 },
            2,
            500,
            7,
        );
        let dc = Variant::CoarseNonBlockingReads.build(graph.num_vertices());
        let result = run_throughput(dc.as_ref(), &workload);
        assert_eq!(result.threads, 2);
        assert_eq!(result.operations, 1000);
        assert!(result.ops_per_ms > 0.0);
        assert!(result.active_time_percent >= 0.0 && result.active_time_percent <= 100.0);
        // 1-in-16 sampling over 1000 ops: the latency distribution is
        // populated and ordered.
        assert!(result.latency.count() >= 1000 / 16);
        assert!(result.latency.p50() <= result.latency.p99());
        assert!(result.latency.p99() <= result.latency.p999());
        assert!(result.latency.p999() <= result.latency.max());
    }

    #[test]
    fn incremental_run_ends_fully_connected_for_connected_graph() {
        let graph = generators::road_network(10, 10, 0.5, true, 3);
        let workload = Workload::generate(&graph, Scenario::Incremental, 3, 0, 5);
        let dc = Variant::OurAlgorithm.build(graph.num_vertices());
        let _ = run_throughput(dc.as_ref(), &workload);
        assert!(dc.connected(0, (graph.num_vertices() - 1) as u32));
    }

    #[test]
    fn decremental_run_ends_fully_disconnected() {
        let graph = generators::erdos_renyi_nm(60, 120, 2);
        let workload = Workload::generate(&graph, Scenario::Decremental, 2, 0, 5);
        let dc = Variant::FineNonBlockingReads.build(graph.num_vertices());
        let _ = run_throughput(dc.as_ref(), &workload);
        for e in graph.edges().iter().take(20) {
            // After removing every edge, no pair that was only connected by
            // that edge remains connected; spot-check a few single edges.
            let _ = e;
        }
        // Every vertex must be isolated: check a sample of pairs.
        for i in 0..10u32 {
            assert!(!dc.connected(i, i + 20));
        }
    }
}
