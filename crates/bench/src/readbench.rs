//! The read-path benchmark tier, emitted as `BENCH_reads.json`.
//!
//! `BENCH_workloads.json` showed read-heavy phases leaving variants at
//! 24–56% active time: for query-dominated traffic the two O(depth)
//! parent-pointer climbs of every `connected` are the dominant cost. This
//! tier measures the version-validated root-hint cache (`DESIGN.md` §8)
//! that replaces them — every scenario runs across **all fourteen
//! variants, with hints on and off**, so the speedup and the hit/miss
//! counters are attributable per variant:
//!
//! * **read-storm** — the [`dc_workloads::presets::read_storm`] preset
//!   (95/3/2, flash-crowd Zipf θ = 1.2, 90% preloaded) over *power-law
//!   communities*
//!   (disjoint preferential-attachment clusters, the multi-tenant service
//!   shape): churn lands mostly on non-spanning edges, and the occasional
//!   spanning change only bumps the root of its own community, so the
//!   other communities' hints keep validating. The headline scenario; the
//!   CI gate asserts a non-zero hit rate here.
//! * **zipf-read** — 100% reads over a single *giant* power-law component:
//!   the pure-read ceiling of the fast path (after warm-up every query is
//!   two hint loads plus the validation loads). The giant component also
//!   shows the flip side measured by read-storm's community split: one
//!   structural change here invalidates every vertex's hint at once.
//! * **mixed-churn-readers** — 50/25/25 at θ = 0.8 over a ring of cliques
//!   whose bridges make spanning-edge churn (and therefore hint
//!   invalidation) frequent: the adversarial regime, where the cache must
//!   not cost more than it saves.
//!
//! Hints are toggled through the process-wide construction default
//! ([`dc_ett::set_default_read_hints`]); counters come back through
//! [`dynconn::DynamicConnectivity::read_hint_counters`]. Variants whose
//! reads are lock-based never consult the cache — their cells report zero
//! consultations and a ~1x speedup, which is itself part of the result
//! (the cache only accelerates the lock-free read protocol).

use crate::report::{json_number, json_string};
use dc_sync::waitstats;
use dc_workloads::{presets, GeneratedWorkload, Op, Phase, Topology, WorkloadSpec};
use dynconn::{DynamicConnectivity, Variant};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Scenario parameters for the read-path benchmark.
#[derive(Clone, Debug)]
pub struct ReadBenchConfig {
    /// Vertex budget for the generated topologies.
    pub n: usize,
    /// Power-law attachment degree (edge universe is roughly `n * m`).
    pub m_per_vertex: usize,
    /// Per-thread operation budget per scenario.
    pub ops_per_thread: usize,
    /// Concurrent threads.
    pub threads: usize,
    /// PRNG seed.
    pub seed: u64,
    /// Repetitions; best throughput per cell is kept.
    pub repeats: usize,
}

impl ReadBenchConfig {
    /// The tracked configuration (shrunk under `DC_BENCH_QUICK=1`, thread
    /// count overridable via `DC_BENCH_THREADS`).
    pub fn from_env() -> Self {
        let quick = std::env::var("DC_BENCH_QUICK")
            .map(|v| v != "0")
            .unwrap_or(false);
        let mut config = if quick {
            ReadBenchConfig {
                n: 512,
                m_per_vertex: 6,
                ops_per_thread: 2_000,
                threads: 4,
                seed: 0x5EAD,
                repeats: 1,
            }
        } else {
            ReadBenchConfig {
                n: 16_384,
                m_per_vertex: 8,
                ops_per_thread: 40_000,
                threads: 8,
                seed: 0x5EAD,
                // Best-of-5 per (variant, mode) cell: this box runs 8 bench
                // threads on few cores, so single-run speedup ratios are
                // noisy; taking the best of more repeats stabilizes both
                // sides of the on/off ratio.
                repeats: 5,
            }
        };
        if let Ok(v) = std::env::var("DC_BENCH_THREADS") {
            if let Some(t) = v
                .split(',')
                .filter_map(|s| s.trim().parse::<usize>().ok())
                .max()
            {
                config.threads = t.max(1);
            }
        }
        config
    }
}

/// One measured (variant, hints on/off) cell.
#[derive(Clone, Debug)]
pub struct ReadCell {
    /// Operations per second.
    pub ops_per_sec: f64,
    /// Active time rate in percent.
    pub active_time_percent: f64,
    /// Total lock-wait time across threads, milliseconds.
    pub wait_ms: f64,
    /// Hint-cache hits during the kept run (0 for lock-based readers).
    pub hint_hits: u64,
    /// Hint-cache misses during the kept run.
    pub hint_misses: u64,
}

impl ReadCell {
    /// Percentage of hint consultations that hit.
    pub fn hit_rate_percent(&self) -> f64 {
        let total = self.hint_hits + self.hint_misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.hint_hits as f64 / total as f64
        }
    }
}

/// One variant under one scenario: the hints-on and hints-off cells.
#[derive(Clone, Debug)]
pub struct VariantReadRun {
    /// The variant's display name.
    pub variant: String,
    /// The variant's paper number (1–14).
    pub number: u8,
    /// Measured with the hint cache enabled.
    pub hints_on: ReadCell,
    /// Measured with the hint cache disabled.
    pub hints_off: ReadCell,
}

impl VariantReadRun {
    /// Hints-on throughput over hints-off throughput.
    pub fn speedup(&self) -> f64 {
        self.hints_on.ops_per_sec / self.hints_off.ops_per_sec.max(1e-9)
    }
}

/// One read scenario: the graph it ran on and all variant runs.
#[derive(Clone, Debug)]
pub struct ReadScenarioResult {
    /// Scenario key used in JSON ("read-storm", ...).
    pub name: String,
    /// Topology description.
    pub topology: String,
    /// Vertices of the universe.
    pub vertices: usize,
    /// Edges of the universe.
    pub edges: usize,
    /// Total operations per variant run.
    pub total_operations: usize,
    /// All variant runs, in paper-number order.
    pub runs: Vec<VariantReadRun>,
}

impl ReadScenarioResult {
    /// The run of paper variant `number`, if measured.
    pub fn run(&self, number: u8) -> Option<&VariantReadRun> {
        self.runs.iter().find(|r| r.number == number)
    }
}

/// The full read-path measurement, serialized as `BENCH_reads.json`.
#[derive(Clone, Debug, Default)]
pub struct ReadBaseline {
    /// Short git revision.
    pub git_rev: String,
    /// The configuration the numbers were measured at.
    pub config: Option<ReadBenchConfig>,
    /// All scenarios.
    pub scenarios: Vec<ReadScenarioResult>,
}

impl ReadBaseline {
    /// The scenario named `name`, if measured.
    pub fn scenario(&self, name: &str) -> Option<&ReadScenarioResult> {
        self.scenarios.iter().find(|s| s.name == name)
    }
}

/// Runs one single-phase workload to completion, returning throughput,
/// waitstats and the structure's hint counters for the run.
fn measure(structure: &dyn DynamicConnectivity, workload: &GeneratedWorkload) -> ReadCell {
    for edge in &workload.preload {
        structure.add_edge(edge.u(), edge.v());
    }
    let (hits0, misses0) = structure.read_hint_counters().unwrap_or((0, 0));
    let phase = &workload.phases[0];
    let threads = phase.per_thread.len();
    waitstats::reset();
    waitstats::set_enabled(true);
    let start_flag = AtomicBool::new(false);
    let started = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = phase
            .per_thread
            .iter()
            .map(|ops| {
                let start_flag = &start_flag;
                scope.spawn(move || {
                    while !start_flag.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                    for op in ops {
                        match *op {
                            Op::Add(u, v) => structure.add_edge(u, v),
                            Op::Remove(u, v) => structure.remove_edge(u, v),
                            Op::Query(u, v) => {
                                std::hint::black_box(structure.connected(u, v));
                            }
                        }
                    }
                })
            })
            .collect();
        start_flag.store(true, Ordering::Release);
        for handle in handles {
            handle.join().expect("read bench worker panicked");
        }
    });
    let elapsed = started.elapsed();
    waitstats::set_enabled(false);
    let (hits1, misses1) = structure.read_hint_counters().unwrap_or((0, 0));
    let operations = phase.total_operations();
    let total_thread_nanos = (elapsed.as_nanos() as u64).saturating_mul(threads as u64);
    ReadCell {
        ops_per_sec: operations as f64 / elapsed.as_secs_f64().max(1e-9),
        active_time_percent: waitstats::active_time_rate_percent(total_thread_nanos),
        wait_ms: waitstats::total_wait_nanos() as f64 / 1e6,
        hint_hits: hits1.saturating_sub(hits0),
        hint_misses: misses1.saturating_sub(misses0),
    }
}

/// Measures `workload` for `variant` with the hint cache on or off (set via
/// the process-wide construction default, restored by the caller).
fn measure_variant(
    variant: Variant,
    n: usize,
    workload: &GeneratedWorkload,
    hints: bool,
) -> ReadCell {
    dc_ett::set_default_read_hints(hints);
    let structure = variant.build(n);
    measure(structure.as_ref(), workload)
}

/// Runs one scenario over every variant, hints on and off, keeping the
/// best-throughput cell per (variant, mode) across `repeats`.
fn run_read_scenario(
    name: &str,
    topology: &Topology,
    graph: &dc_graph::Graph,
    workload: &GeneratedWorkload,
    variants: &[Variant],
    repeats: usize,
) -> ReadScenarioResult {
    assert_eq!(
        workload.phases.len(),
        1,
        "read scenarios are single-phase by construction"
    );
    let mut runs: Vec<VariantReadRun> = Vec::new();
    for _ in 0..repeats.max(1) {
        for &variant in variants {
            let on = measure_variant(variant, graph.num_vertices(), workload, true);
            let off = measure_variant(variant, graph.num_vertices(), workload, false);
            match runs.iter_mut().find(|r| r.number == variant.paper_number()) {
                Some(run) => {
                    if on.ops_per_sec > run.hints_on.ops_per_sec {
                        run.hints_on = on;
                    }
                    if off.ops_per_sec > run.hints_off.ops_per_sec {
                        run.hints_off = off;
                    }
                }
                None => runs.push(VariantReadRun {
                    variant: variant.name().to_string(),
                    number: variant.paper_number(),
                    hints_on: on,
                    hints_off: off,
                }),
            }
        }
    }
    ReadScenarioResult {
        name: name.to_string(),
        topology: topology.name(),
        vertices: graph.num_vertices(),
        edges: graph.num_edges(),
        total_operations: workload.total_operations(),
        runs,
    }
}

/// Restores the process-wide hint default on drop, so a panicking run
/// (e.g. a failing assert in a test) cannot leave other tests in the same
/// binary constructing silently hint-less structures.
struct DefaultHintsGuard(bool);

impl Drop for DefaultHintsGuard {
    fn drop(&mut self) {
        dc_ett::set_default_read_hints(self.0);
    }
}

/// Measures the three read-path scenarios across all fourteen variants,
/// with the hint cache on and off.
pub fn run_read_bench(config: &ReadBenchConfig) -> ReadBaseline {
    dc_batch::register_variant();
    let variants: Vec<Variant> = (1..=14)
        .filter_map(Variant::by_paper_number)
        .filter(|v| *v != Variant::BatchEngine || dynconn::batch_builder_registered())
        .collect();
    let _restore_default = DefaultHintsGuard(dc_ett::default_read_hints());
    let mut baseline = ReadBaseline {
        git_rev: crate::ettbench::git_rev(),
        config: Some(config.clone()),
        ..Default::default()
    };

    // --- read-storm: the headline scenario ---------------------------------
    let community_n = 256.min(config.n / 2).max(8);
    let topo = Topology::PowerLawCommunities {
        communities: (config.n / community_n).max(1),
        community_n,
        m_per_vertex: config.m_per_vertex,
    };
    let graph = topo.build(config.seed);
    let workload = presets::read_storm(&graph, config.threads, config.ops_per_thread, config.seed);
    baseline.scenarios.push(run_read_scenario(
        "read-storm",
        &topo,
        &graph,
        &workload,
        &variants,
        config.repeats,
    ));

    // --- zipf-read: the pure-read ceiling (one giant component) ------------
    let topo = Topology::PowerLaw {
        n: config.n,
        m_per_vertex: config.m_per_vertex,
    };
    let graph = topo.build(config.seed);
    let workload = WorkloadSpec::new(config.threads, config.seed ^ 0x21)
        .preload(1.0)
        .phase(
            Phase::new("zipf-read", config.ops_per_thread)
                .mix(100, 0, 0)
                .zipf(0.99),
        )
        .generate(&graph);
    baseline.scenarios.push(run_read_scenario(
        "zipf-read",
        &topo,
        &graph,
        &workload,
        &variants,
        config.repeats,
    ));

    // --- mixed churn with readers: the invalidation-heavy regime -----------
    let clique_size = 8;
    let topo = Topology::RingOfCliques {
        cliques: (config.n / clique_size).max(2),
        clique_size,
        extra_bridges: config.n / 16,
    };
    let graph = topo.build(config.seed ^ 0xC4);
    let workload = WorkloadSpec::new(config.threads, config.seed ^ 0xC4)
        .preload(0.5)
        .phase(
            Phase::new("mixed-churn", config.ops_per_thread)
                .mix(50, 25, 25)
                .zipf(0.8),
        )
        .generate(&graph);
    baseline.scenarios.push(run_read_scenario(
        "mixed-churn-readers",
        &topo,
        &graph,
        &workload,
        &variants,
        config.repeats,
    ));

    baseline
}

impl ReadBaseline {
    /// Renders the measurement as pretty JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"dc-bench/reads/v1\",\n");
        out.push_str(&format!("  \"git_rev\": {},\n", json_string(&self.git_rev)));
        if let Some(config) = &self.config {
            out.push_str("  \"config\": {\n");
            out.push_str(&format!("    \"vertices\": {},\n", config.n));
            out.push_str(&format!("    \"m_per_vertex\": {},\n", config.m_per_vertex));
            out.push_str(&format!(
                "    \"ops_per_thread\": {},\n",
                config.ops_per_thread
            ));
            out.push_str(&format!("    \"threads\": {},\n", config.threads));
            out.push_str(&format!("    \"seed\": {},\n", config.seed));
            out.push_str(&format!("    \"repeats_best_of\": {}\n", config.repeats));
            out.push_str("  },\n");
        }
        out.push_str("  \"scenarios\": {");
        for (si, scenario) in self.scenarios.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {{\n", json_string(&scenario.name)));
            out.push_str(&format!(
                "      \"topology\": {},\n",
                json_string(&scenario.topology)
            ));
            out.push_str(&format!("      \"vertices\": {},\n", scenario.vertices));
            out.push_str(&format!("      \"edges\": {},\n", scenario.edges));
            out.push_str(&format!(
                "      \"total_operations\": {},\n",
                scenario.total_operations
            ));
            out.push_str("      \"variants\": {");
            for (vi, run) in scenario.runs.iter().enumerate() {
                if vi > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n        {}: {{\n", json_string(&run.variant)));
                out.push_str(&format!("          \"number\": {},\n", run.number));
                for (key, cell) in [("hints_on", &run.hints_on), ("hints_off", &run.hints_off)] {
                    out.push_str(&format!(
                        "          \"{}\": {{ \"ops_per_sec\": {}, \"active_time_percent\": {}, \
                         \"wait_ms\": {}, \"hint_hits\": {}, \"hint_misses\": {}, \
                         \"hint_hit_rate_percent\": {} }},\n",
                        key,
                        json_number(cell.ops_per_sec),
                        json_number(cell.active_time_percent),
                        json_number(cell.wait_ms),
                        cell.hint_hits,
                        cell.hint_misses,
                        json_number(cell.hit_rate_percent())
                    ));
                }
                out.push_str(&format!(
                    "          \"speedup_hints_on_vs_off\": {}\n        }}",
                    json_number(run.speedup())
                ));
            }
            out.push_str("\n      }\n    }");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders aligned text tables, one per scenario.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let threads = self.config.as_ref().map(|c| c.threads).unwrap_or(0);
        out.push_str(&format!(
            "== Read-path tier ({} threads, rev {}) ==\n",
            threads, self.git_rev
        ));
        for scenario in &self.scenarios {
            out.push_str(&format!(
                "\n-- {} on {} (|V|={}, |E|={}, {} ops) --\n",
                scenario.name,
                scenario.topology,
                scenario.vertices,
                scenario.edges,
                scenario.total_operations
            ));
            out.push_str(&format!(
                "{:<44}{:>14}{:>14}{:>9}{:>10}\n",
                "variant", "hints ops/s", "plain ops/s", "speedup", "hit rate"
            ));
            let mut sorted: Vec<&VariantReadRun> = scenario.runs.iter().collect();
            sorted.sort_by(|a, b| b.speedup().total_cmp(&a.speedup()));
            for run in sorted {
                out.push_str(&format!(
                    "{:<44}{:>14.0}{:>14.0}{:>8.2}x{:>9.1}%\n",
                    run.variant,
                    run.hints_on.ops_per_sec,
                    run.hints_off.ops_per_sec,
                    run.speedup(),
                    run.hints_on.hit_rate_percent()
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_bench_runs_on_a_tiny_instance() {
        let config = ReadBenchConfig {
            n: 96,
            m_per_vertex: 4,
            ops_per_thread: 300,
            threads: 2,
            seed: 7,
            repeats: 1,
        };
        let baseline = run_read_bench(&config);
        let names: Vec<&str> = baseline.scenarios.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["read-storm", "zipf-read", "mixed-churn-readers"]);
        for scenario in &baseline.scenarios {
            assert_eq!(scenario.runs.len(), 14, "{}", scenario.name);
            for run in &scenario.runs {
                assert!(run.hints_on.ops_per_sec > 0.0, "{}", run.variant);
                assert!(run.hints_off.ops_per_sec > 0.0, "{}", run.variant);
                assert_eq!(
                    run.hints_off.hint_hits, 0,
                    "{}: hints-off runs must never consult the cache",
                    run.variant
                );
            }
        }
        // The lock-free read variants actually exercise the cache on the
        // read storm...
        let storm = baseline.scenario("read-storm").unwrap();
        for number in [3, 5, 8, 9, 10, 11, 13, 14] {
            let run = storm.run(number).unwrap();
            assert!(
                run.hints_on.hint_hits > 0,
                "variant {number} saw no hint hits on the read storm"
            );
        }
        // ...and the lock-based readers never do (their reads hold locks).
        for number in [1, 2, 4, 6, 7] {
            let run = storm.run(number).unwrap();
            assert_eq!(
                run.hints_on.hint_hits + run.hints_on.hint_misses,
                0,
                "variant {number} has no lock-free read path to consult hints"
            );
        }
        assert!(dc_ett::default_read_hints(), "default must be restored");
        let json = baseline.to_json();
        assert!(json.contains("dc-bench/reads/v1"));
        assert!(json.contains("speedup_hints_on_vs_off"));
        assert!(json.contains("hint_hit_rate_percent"));
        assert!(baseline.render_text().contains("hit rate"));
    }
}
