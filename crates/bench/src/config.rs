//! Benchmark configuration shared by every figure/table binary.
//!
//! The paper's experiments run on a 144-hardware-thread server with graphs of
//! up to 91M edges; reproduction hosts are much smaller, so every dimension
//! (graph scale, operations per thread, thread counts) is configurable and
//! defaults to a size that completes in minutes on a laptop.  Environment
//! variables override the defaults so `cargo bench` / CI can run a quick
//! smoke pass (`DC_BENCH_QUICK=1`) while a full run uses larger settings.

use dc_graph::ScaledCatalog;

/// Configuration for the throughput benchmarks.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Vertex budget for the Table 1 (small) graphs.
    pub small_vertices: usize,
    /// Vertex budget for the Table 2 (large) graphs.
    pub large_vertices: usize,
    /// Operations performed by each thread in a measurement.
    pub ops_per_thread: usize,
    /// Thread counts swept for the small graphs (the paper uses
    /// 1..144; we default to what the host offers).
    pub thread_counts: Vec<usize>,
    /// Thread count used for the large graphs ("maximum parallelism").
    pub max_threads: usize,
    /// Random seed.
    pub seed: u64,
}

impl BenchConfig {
    /// Builds the configuration from the environment.
    ///
    /// * `DC_BENCH_QUICK=1` — tiny sizes for smoke testing (default when run
    ///   under `cargo bench` in CI).
    /// * `DC_BENCH_SMALL_VERTICES`, `DC_BENCH_LARGE_VERTICES`,
    ///   `DC_BENCH_OPS`, `DC_BENCH_THREADS` (comma-separated) override
    ///   individual knobs.
    pub fn from_env() -> Self {
        let quick = std::env::var("DC_BENCH_QUICK")
            .map(|v| v != "0")
            .unwrap_or(false);
        let hw_threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let mut config = if quick {
            BenchConfig {
                small_vertices: 2_000,
                large_vertices: 8_000,
                ops_per_thread: 5_000,
                thread_counts: dedup_sorted(vec![1, 2, hw_threads.max(2)]),
                max_threads: hw_threads.max(2),
                seed: 0xDC0DE,
            }
        } else {
            BenchConfig {
                small_vertices: 20_000,
                large_vertices: 100_000,
                ops_per_thread: 50_000,
                thread_counts: default_thread_sweep(hw_threads),
                max_threads: (hw_threads * 2).max(2),
                seed: 0xDC0DE,
            }
        };
        if let Ok(v) = std::env::var("DC_BENCH_SMALL_VERTICES") {
            if let Ok(n) = v.parse() {
                config.small_vertices = n;
            }
        }
        if let Ok(v) = std::env::var("DC_BENCH_LARGE_VERTICES") {
            if let Ok(n) = v.parse() {
                config.large_vertices = n;
            }
        }
        if let Ok(v) = std::env::var("DC_BENCH_OPS") {
            if let Ok(n) = v.parse() {
                config.ops_per_thread = n;
            }
        }
        if let Ok(v) = std::env::var("DC_BENCH_THREADS") {
            let parsed: Vec<usize> = v
                .split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&t| t >= 1)
                .collect();
            if !parsed.is_empty() {
                config.max_threads = *parsed.iter().max().unwrap();
                config.thread_counts = dedup_sorted(parsed);
            }
        }
        config
    }

    /// The graph catalog scaled according to this configuration.
    pub fn catalog(&self) -> ScaledCatalog {
        ScaledCatalog {
            small_vertices: self.small_vertices,
            large_vertices: self.large_vertices,
            seed: self.seed,
        }
    }
}

/// The global scale multiplier from `DC_BENCH_SCALE`.
///
/// Benchmark tiers that target a fixed problem size (notably the huge-graph
/// latency tier, which defaults to n = 10M vertices) multiply their size by
/// this factor, so `DC_BENCH_SCALE=0.01` yields a fast sanity run and
/// `DC_BENCH_SCALE=5` stretches the same cells to n = 50M.  Unset, empty or
/// malformed values fall back to 1.0; finite values are clamped to
/// `[0.0001, 100.0]` so a typo cannot request a zero-sized or
/// memory-exhausting run.
pub fn bench_scale() -> f64 {
    parse_scale(std::env::var("DC_BENCH_SCALE").ok().as_deref())
}

/// Pure parsing/clamping behind [`bench_scale`], separated so it can be
/// tested without mutating process-global environment state.
pub fn parse_scale(raw: Option<&str>) -> f64 {
    const MIN_SCALE: f64 = 0.0001;
    const MAX_SCALE: f64 = 100.0;
    match raw.and_then(|s| s.trim().parse::<f64>().ok()) {
        Some(v) if v.is_finite() => v.clamp(MIN_SCALE, MAX_SCALE),
        _ => 1.0,
    }
}

fn default_thread_sweep(hw: usize) -> Vec<usize> {
    // Mirror the paper's 1,2,4,...,144 sweep, truncated to the host (with one
    // oversubscribed point to show the saturation tail).
    let mut sweep = vec![1usize];
    let mut t = 2;
    while t <= hw {
        sweep.push(t);
        t *= 2;
    }
    if *sweep.last().unwrap() != hw {
        sweep.push(hw);
    }
    sweep.push(hw * 2);
    dedup_sorted(sweep)
}

fn dedup_sorted(mut v: Vec<usize>) -> Vec<usize> {
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sweep_is_sorted_and_unique() {
        for hw in [1, 2, 4, 6, 144] {
            let sweep = default_thread_sweep(hw);
            let mut sorted = sweep.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sweep, sorted);
            assert_eq!(sweep[0], 1);
            assert!(sweep.last().copied().unwrap() >= hw);
        }
    }

    #[test]
    fn scale_parsing_clamps_and_defaults() {
        // Missing / empty / garbage → the neutral 1.0.
        assert_eq!(parse_scale(None), 1.0);
        assert_eq!(parse_scale(Some("")), 1.0);
        assert_eq!(parse_scale(Some("fast")), 1.0);
        assert_eq!(parse_scale(Some("NaN")), 1.0);
        assert_eq!(parse_scale(Some("inf")), 1.0);
        // Well-formed values pass through (whitespace tolerated).
        assert_eq!(parse_scale(Some("0.5")), 0.5);
        assert_eq!(parse_scale(Some(" 2 ")), 2.0);
        // Out-of-range values clamp instead of exploding the run.
        assert_eq!(parse_scale(Some("0")), 0.0001);
        assert_eq!(parse_scale(Some("-3")), 0.0001);
        assert_eq!(parse_scale(Some("1e9")), 100.0);
    }

    #[test]
    fn catalog_respects_config() {
        let config = BenchConfig {
            small_vertices: 500,
            large_vertices: 1000,
            ops_per_thread: 10,
            thread_counts: vec![1],
            max_threads: 1,
            seed: 7,
        };
        let cat = config.catalog();
        assert_eq!(cat.small_vertices, 500);
        assert_eq!(cat.large_vertices, 1000);
    }
}
