//! The three benchmark scenarios of the paper's Section 5.1, as a thin
//! wrapper over the [`dc_workloads`] preset generators.
//!
//! * **Random subset** — the structure starts with a random half of the
//!   graph's edges; threads then execute a random mix of connectivity
//!   queries, edge additions and edge removals over randomly chosen graph
//!   edges, with equal add/remove percentages so the edge count stays
//!   roughly constant.
//! * **Incremental** — threads concurrently insert the whole graph into an
//!   initially empty structure.
//! * **Decremental** — threads concurrently delete every edge from a
//!   structure initialized with the whole graph.
//!
//! The general workload machinery — phased op mixes, Zipf hot-edge skew,
//! additional topologies, trace record/replay — lives in [`dc_workloads`];
//! this module only keeps the paper's named trio and the flat
//! [`Workload`] shape the figure binaries consume. [`Operation`] is a
//! re-export of [`dc_workloads::Op`].

use dc_graph::{Edge, Graph};
use dc_workloads::presets;

/// One benchmark operation (re-exported from [`dc_workloads`]).
pub use dc_workloads::Op as Operation;

/// Which paper scenario to generate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Scenario {
    /// The random-subset scenario with the given percentage of reads
    /// (additions and removals split the remainder equally).
    RandomSubset {
        /// Percentage (0–100) of `connected` operations.
        read_percent: u32,
    },
    /// Insert the whole graph into an empty structure.
    Incremental,
    /// Delete the whole graph from a fully loaded structure.
    Decremental,
}

impl Scenario {
    /// A short name used in reports.
    pub fn name(&self) -> String {
        match self {
            Scenario::RandomSubset { read_percent } => {
                format!("random ({read_percent}% reads)")
            }
            Scenario::Incremental => "incremental".to_string(),
            Scenario::Decremental => "decremental".to_string(),
        }
    }
}

/// A fully generated workload: the edges to preload and one operation stream
/// per thread.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Edges inserted before the measurement starts.
    pub preload: Vec<Edge>,
    /// One operation stream per thread.
    pub per_thread: Vec<Vec<Operation>>,
    /// The scenario this workload was generated for.
    pub scenario: Scenario,
}

impl Workload {
    /// Total number of operations across all threads.
    pub fn total_operations(&self) -> usize {
        self.per_thread.iter().map(|ops| ops.len()).sum()
    }

    /// Generates the workload for `scenario` on `graph` by delegating to
    /// the matching [`dc_workloads::presets`] generator.
    ///
    /// `threads` streams of (roughly) `ops_per_thread` operations are
    /// produced; for the incremental and decremental scenarios the graph's
    /// edges are partitioned across the threads instead, so every edge is
    /// added (respectively removed) exactly once.
    pub fn generate(
        graph: &Graph,
        scenario: Scenario,
        threads: usize,
        ops_per_thread: usize,
        seed: u64,
    ) -> Workload {
        let generated = match scenario {
            Scenario::RandomSubset { read_percent } => {
                presets::random_subset(graph, read_percent, threads, ops_per_thread, seed)
            }
            Scenario::Incremental => presets::incremental(graph, threads, seed),
            Scenario::Decremental => presets::decremental(graph, threads, seed),
        };
        let per_thread = generated.flat_per_thread();
        Workload {
            preload: generated.preload,
            per_thread,
            scenario,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_graph::generators;

    fn graph() -> Graph {
        generators::erdos_renyi_nm(200, 500, 3)
    }

    #[test]
    fn random_subset_respects_read_percentage() {
        let w = Workload::generate(
            &graph(),
            Scenario::RandomSubset { read_percent: 80 },
            2,
            10_000,
            1,
        );
        assert_eq!(w.preload.len(), 250);
        assert_eq!(w.per_thread.len(), 2);
        let all: Vec<&Operation> = w.per_thread.iter().flatten().collect();
        let reads = all
            .iter()
            .filter(|op| matches!(op, Operation::Query(_, _)))
            .count();
        let frac = reads as f64 / all.len() as f64;
        assert!((frac - 0.8).abs() < 0.02, "read fraction {frac}");
        // Adds and removes are balanced.
        let adds = all
            .iter()
            .filter(|op| matches!(op, Operation::Add(_, _)))
            .count();
        let removes = all
            .iter()
            .filter(|op| matches!(op, Operation::Remove(_, _)))
            .count();
        let ratio = adds as f64 / removes.max(1) as f64;
        assert!(ratio > 0.8 && ratio < 1.25, "add/remove ratio {ratio}");
    }

    #[test]
    fn incremental_covers_every_edge_exactly_once() {
        let g = graph();
        let w = Workload::generate(&g, Scenario::Incremental, 3, 0, 1);
        assert!(w.preload.is_empty());
        assert_eq!(w.total_operations(), g.num_edges());
        let mut seen = std::collections::HashSet::new();
        for op in w.per_thread.iter().flatten() {
            match op {
                Operation::Add(u, v) => assert!(seen.insert(Edge::new(*u, *v))),
                _ => panic!("incremental workload must only contain additions"),
            }
        }
        assert_eq!(seen.len(), g.num_edges());
    }

    #[test]
    fn decremental_preloads_everything_and_removes_it() {
        let g = graph();
        let w = Workload::generate(&g, Scenario::Decremental, 4, 0, 1);
        assert_eq!(w.preload.len(), g.num_edges());
        assert_eq!(w.total_operations(), g.num_edges());
        assert!(w
            .per_thread
            .iter()
            .flatten()
            .all(|op| matches!(op, Operation::Remove(_, _))));
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let g = graph();
        let a = Workload::generate(&g, Scenario::RandomSubset { read_percent: 50 }, 2, 100, 9);
        let b = Workload::generate(&g, Scenario::RandomSubset { read_percent: 50 }, 2, 100, 9);
        assert_eq!(a.per_thread, b.per_thread);
        assert_eq!(a.preload, b.preload);
    }
}
