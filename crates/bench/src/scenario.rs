//! Workload generators for the three benchmark scenarios of Section 5.1.
//!
//! * **Random subset** — the structure starts with a random half of the
//!   graph's edges; threads then execute a random mix of connectivity
//!   queries, edge additions and edge removals over randomly chosen graph
//!   edges, with equal add/remove percentages so the edge count stays
//!   roughly constant.
//! * **Incremental** — threads concurrently insert the whole graph into an
//!   initially empty structure.
//! * **Decremental** — threads concurrently delete every edge from a
//!   structure initialized with the whole graph.

use dc_graph::{Edge, Graph, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One benchmark operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operation {
    /// `add_edge(u, v)`.
    Add(VertexId, VertexId),
    /// `remove_edge(u, v)`.
    Remove(VertexId, VertexId),
    /// `connected(u, v)`.
    Query(VertexId, VertexId),
}

/// Which scenario to generate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Scenario {
    /// The random-subset scenario with the given percentage of reads
    /// (additions and removals split the remainder equally).
    RandomSubset {
        /// Percentage (0–100) of `connected` operations.
        read_percent: u32,
    },
    /// Insert the whole graph into an empty structure.
    Incremental,
    /// Delete the whole graph from a fully loaded structure.
    Decremental,
}

impl Scenario {
    /// A short name used in reports.
    pub fn name(&self) -> String {
        match self {
            Scenario::RandomSubset { read_percent } => {
                format!("random ({read_percent}% reads)")
            }
            Scenario::Incremental => "incremental".to_string(),
            Scenario::Decremental => "decremental".to_string(),
        }
    }
}

/// A fully generated workload: the edges to preload and one operation stream
/// per thread.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Edges inserted before the measurement starts.
    pub preload: Vec<Edge>,
    /// One operation stream per thread.
    pub per_thread: Vec<Vec<Operation>>,
    /// The scenario this workload was generated for.
    pub scenario: Scenario,
}

impl Workload {
    /// Total number of operations across all threads.
    pub fn total_operations(&self) -> usize {
        self.per_thread.iter().map(|ops| ops.len()).sum()
    }

    /// Generates the workload for `scenario` on `graph`.
    ///
    /// `threads` streams of (roughly) `ops_per_thread` operations are
    /// produced; for the incremental and decremental scenarios the graph's
    /// edges are partitioned across the threads instead, so every edge is
    /// added (respectively removed) exactly once.
    pub fn generate(
        graph: &Graph,
        scenario: Scenario,
        threads: usize,
        ops_per_thread: usize,
        seed: u64,
    ) -> Workload {
        assert!(threads >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        match scenario {
            Scenario::RandomSubset { read_percent } => {
                assert!(read_percent <= 100);
                // Preload a random half of the edges.
                let mut edges: Vec<Edge> = graph.edges().to_vec();
                edges.shuffle(&mut rng);
                let preload: Vec<Edge> = edges[..edges.len() / 2].to_vec();
                let n = graph.num_vertices() as VertexId;
                let per_thread = (0..threads)
                    .map(|t| {
                        let mut trng = StdRng::seed_from_u64(seed ^ ((t as u64 + 1) * 0x9E37));
                        (0..ops_per_thread)
                            .map(|_| {
                                let roll = trng.gen_range(0..100u32);
                                if roll < read_percent {
                                    let u = trng.gen_range(0..n);
                                    let v = trng.gen_range(0..n);
                                    Operation::Query(u, v.min(n - 1))
                                } else {
                                    let e = graph.edge(trng.gen_range(0..graph.num_edges()));
                                    if roll % 2 == 0 {
                                        Operation::Add(e.u(), e.v())
                                    } else {
                                        Operation::Remove(e.u(), e.v())
                                    }
                                }
                            })
                            .collect()
                    })
                    .collect();
                Workload {
                    preload,
                    per_thread,
                    scenario,
                }
            }
            Scenario::Incremental => {
                let mut edges: Vec<Edge> = graph.edges().to_vec();
                edges.shuffle(&mut rng);
                let per_thread = partition(&edges, threads)
                    .into_iter()
                    .map(|chunk| {
                        chunk
                            .into_iter()
                            .map(|e| Operation::Add(e.u(), e.v()))
                            .collect()
                    })
                    .collect();
                Workload {
                    preload: Vec::new(),
                    per_thread,
                    scenario,
                }
            }
            Scenario::Decremental => {
                let mut edges: Vec<Edge> = graph.edges().to_vec();
                edges.shuffle(&mut rng);
                let per_thread = partition(&edges, threads)
                    .into_iter()
                    .map(|chunk| {
                        chunk
                            .into_iter()
                            .map(|e| Operation::Remove(e.u(), e.v()))
                            .collect()
                    })
                    .collect();
                Workload {
                    preload: graph.edges().to_vec(),
                    per_thread,
                    scenario,
                }
            }
        }
    }
}

fn partition(edges: &[Edge], threads: usize) -> Vec<Vec<Edge>> {
    let mut chunks = vec![Vec::new(); threads];
    for (i, &e) in edges.iter().enumerate() {
        chunks[i % threads].push(e);
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_graph::generators;

    fn graph() -> Graph {
        generators::erdos_renyi_nm(200, 500, 3)
    }

    #[test]
    fn random_subset_respects_read_percentage() {
        let w = Workload::generate(
            &graph(),
            Scenario::RandomSubset { read_percent: 80 },
            2,
            10_000,
            1,
        );
        assert_eq!(w.preload.len(), 250);
        assert_eq!(w.per_thread.len(), 2);
        let all: Vec<&Operation> = w.per_thread.iter().flatten().collect();
        let reads = all
            .iter()
            .filter(|op| matches!(op, Operation::Query(_, _)))
            .count();
        let frac = reads as f64 / all.len() as f64;
        assert!((frac - 0.8).abs() < 0.02, "read fraction {frac}");
        // Adds and removes are balanced.
        let adds = all
            .iter()
            .filter(|op| matches!(op, Operation::Add(_, _)))
            .count();
        let removes = all
            .iter()
            .filter(|op| matches!(op, Operation::Remove(_, _)))
            .count();
        let ratio = adds as f64 / removes.max(1) as f64;
        assert!(ratio > 0.8 && ratio < 1.25, "add/remove ratio {ratio}");
    }

    #[test]
    fn incremental_covers_every_edge_exactly_once() {
        let g = graph();
        let w = Workload::generate(&g, Scenario::Incremental, 3, 0, 1);
        assert!(w.preload.is_empty());
        assert_eq!(w.total_operations(), g.num_edges());
        let mut seen = std::collections::HashSet::new();
        for op in w.per_thread.iter().flatten() {
            match op {
                Operation::Add(u, v) => assert!(seen.insert(Edge::new(*u, *v))),
                _ => panic!("incremental workload must only contain additions"),
            }
        }
        assert_eq!(seen.len(), g.num_edges());
    }

    #[test]
    fn decremental_preloads_everything_and_removes_it() {
        let g = graph();
        let w = Workload::generate(&g, Scenario::Decremental, 4, 0, 1);
        assert_eq!(w.preload.len(), g.num_edges());
        assert_eq!(w.total_operations(), g.num_edges());
        assert!(w
            .per_thread
            .iter()
            .flatten()
            .all(|op| matches!(op, Operation::Remove(_, _))));
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let g = graph();
        let a = Workload::generate(&g, Scenario::RandomSubset { read_percent: 50 }, 2, 100, 9);
        let b = Workload::generate(&g, Scenario::RandomSubset { read_percent: 50 }, 2, 100, 9);
        assert_eq!(a.per_thread, b.per_thread);
        assert_eq!(a.preload, b.preload);
    }
}
