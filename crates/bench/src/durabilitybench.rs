//! The durability benchmark tier, emitted as `BENCH_durability.json`.
//!
//! Two questions decide whether the WAL + checkpoint layer (`DESIGN.md` §9)
//! is usable: what does logging *cost* on the write path, and what does a
//! checkpoint *buy* at recovery time?
//!
//! * **WAL overhead** — the same effective-churn batch stream is driven
//!   through a plain [`dc_batch::BatchEngine`] (no log) and through
//!   [`dc_durable::DurableConnectivity`] under each fsync policy
//!   ([`FsyncPolicy::Always`] / [`FsyncPolicy::EveryN`] /
//!   [`FsyncPolicy::Off`]), with automatic checkpointing at the default
//!   interval. Each cell reports throughput, the overhead versus the plain
//!   engine, and the bytes the run left on disk (segments and checkpoints
//!   separately).
//! * **Recovery** — one history is logged per checkpoint interval in a
//!   sweep (plus interval 0, the full-trace-replay baseline with no
//!   checkpoint at all), the writer is dropped mid-life, and
//!   [`DurableConnectivity::recover`] is timed. The headline cell is the
//!   default interval: checkpoint-load + tail-replay must beat replaying
//!   the entire log from scratch by a wide margin — the CI gate asserts
//!   at least 5x (`summary` binary, `DC_BENCH_DURABILITY_ONLY=1`).
//!
//! Recovery runs read the real files (fault injection is the test suite's
//! job, not the benchmark's); timings are best-of-`repeats` like the rest
//! of the harness.

use crate::report::{json_number, json_string};
use dc_batch::BatchEngine;
use dc_durable::{DurableConnectivity, DurableOptions, FsyncPolicy};
use dynconn::{BatchConnectivity, BatchOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Scenario parameters for the durability benchmark.
#[derive(Clone, Debug)]
pub struct DurabilityBenchConfig {
    /// Vertex universe.
    pub n: usize,
    /// Total update operations in the history.
    pub total_ops: usize,
    /// Operations per bulk batch (one batch = one WAL commit).
    pub batch_ops: usize,
    /// The `n` of the [`FsyncPolicy::EveryN`] overhead cell.
    pub every_n: u32,
    /// The checkpoint interval (in committed batches) of the headline
    /// recovery cell and of the WAL-overhead runs.
    pub default_checkpoint_interval: u64,
    /// Checkpoint intervals swept on the recovery side (the full-replay
    /// baseline at interval 0 is always measured and is not listed here).
    pub intervals: Vec<u64>,
    /// Repetitions; the best (lowest) time per cell is kept.
    pub repeats: usize,
    /// PRNG seed for the operation history.
    pub seed: u64,
}

impl DurabilityBenchConfig {
    /// The tracked configuration (shrunk under `DC_BENCH_QUICK=1`).
    pub fn from_env() -> Self {
        let quick = std::env::var("DC_BENCH_QUICK")
            .map(|v| v != "0")
            .unwrap_or(false);
        if quick {
            DurabilityBenchConfig {
                n: 256,
                total_ops: 4_000,
                batch_ops: 128,
                every_n: 8,
                default_checkpoint_interval: 8,
                intervals: vec![2, 8],
                repeats: 1,
                seed: 0xD15C,
            }
        } else {
            DurabilityBenchConfig {
                n: 2_048,
                total_ops: 40_000,
                batch_ops: 256,
                every_n: 8,
                default_checkpoint_interval: 16,
                intervals: vec![4, 16, 64],
                repeats: 3,
                seed: 0xD15C,
            }
        }
    }

    fn durable_options(&self, fsync: FsyncPolicy, checkpoint_interval: u64) -> DurableOptions {
        DurableOptions {
            fsync,
            checkpoint_interval,
            ..DurableOptions::default()
        }
    }
}

/// One fsync-policy cell of the WAL-overhead table.
#[derive(Clone, Debug)]
pub struct WalOverheadCell {
    /// Policy label (`always`, `everyN`, `off`).
    pub policy: String,
    /// Updates per second through the durable store.
    pub ops_per_sec: f64,
    /// Wall time of the kept run, milliseconds.
    pub millis: f64,
    /// Slowdown versus the plain (log-free) engine, in percent.
    pub overhead_percent: f64,
    /// Bytes of WAL segments left on disk after the run.
    pub wal_bytes: u64,
    /// Bytes of checkpoint files left on disk after the run.
    pub checkpoint_bytes: u64,
    /// Last committed sequence number (confirms every batch was logged).
    pub last_seq: u64,
}

/// One checkpoint-interval cell of the recovery table.
#[derive(Clone, Debug)]
pub struct RecoveryCell {
    /// Checkpoint interval of the history (committed batches).
    pub checkpoint_interval: u64,
    /// Best-of-`repeats` recovery time, milliseconds.
    pub recover_ms: f64,
    /// WAL batches replayed past the checkpoint.
    pub batches_replayed: u64,
    /// `covered_seq` of the checkpoint recovery loaded (0 = none).
    pub checkpoint_seq: u64,
    /// Full-trace-replay time divided by this cell's recovery time.
    pub speedup_vs_full_replay: f64,
}

/// Everything the durability tier measured, serializable as
/// `BENCH_durability.json`.
#[derive(Clone, Debug)]
pub struct DurabilityBaseline {
    /// `git rev-parse --short HEAD` at measurement time.
    pub git_rev: String,
    /// The configuration that produced the numbers.
    pub config: DurabilityBenchConfig,
    /// Plain-engine throughput on the same batch stream (updates/sec).
    pub plain_ops_per_sec: f64,
    /// Plain-engine wall time, milliseconds.
    pub plain_millis: f64,
    /// One cell per fsync policy.
    pub wal_overhead: Vec<WalOverheadCell>,
    /// Recovery time with no checkpoint at all (every batch replayed).
    pub full_replay_ms: f64,
    /// Batches the full replay processed (the whole history).
    pub full_replay_batches: u64,
    /// One cell per swept checkpoint interval.
    pub recovery: Vec<RecoveryCell>,
}

impl DurabilityBaseline {
    /// The headline recovery cell: the default checkpoint interval.
    pub fn default_interval_cell(&self) -> Option<&RecoveryCell> {
        self.recovery
            .iter()
            .find(|c| c.checkpoint_interval == self.config.default_checkpoint_interval)
    }

    /// Serializes as the `dc-bench/durability/v1` JSON document
    /// (`docs/bench-schema.md`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"dc-bench/durability/v1\",\n");
        out.push_str(&format!("  \"git_rev\": {},\n", json_string(&self.git_rev)));
        out.push_str("  \"config\": {\n");
        out.push_str(&format!("    \"n\": {},\n", self.config.n));
        out.push_str(&format!("    \"total_ops\": {},\n", self.config.total_ops));
        out.push_str(&format!("    \"batch_ops\": {},\n", self.config.batch_ops));
        out.push_str(&format!("    \"every_n\": {},\n", self.config.every_n));
        out.push_str(&format!(
            "    \"default_checkpoint_interval\": {},\n",
            self.config.default_checkpoint_interval
        ));
        out.push_str(&format!("    \"repeats\": {},\n", self.config.repeats));
        out.push_str(&format!("    \"seed\": {}\n", self.config.seed));
        out.push_str("  },\n");
        out.push_str("  \"plain\": {\n");
        out.push_str(&format!(
            "    \"ops_per_sec\": {},\n",
            json_number(self.plain_ops_per_sec)
        ));
        out.push_str(&format!(
            "    \"millis\": {}\n",
            json_number(self.plain_millis)
        ));
        out.push_str("  },\n");
        out.push_str("  \"wal_overhead\": [");
        for (i, cell) in self.wal_overhead.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!(
                "      \"policy\": {},\n",
                json_string(&cell.policy)
            ));
            out.push_str(&format!(
                "      \"ops_per_sec\": {},\n",
                json_number(cell.ops_per_sec)
            ));
            out.push_str(&format!(
                "      \"millis\": {},\n",
                json_number(cell.millis)
            ));
            out.push_str(&format!(
                "      \"overhead_percent\": {},\n",
                json_number(cell.overhead_percent)
            ));
            out.push_str(&format!("      \"wal_bytes\": {},\n", cell.wal_bytes));
            out.push_str(&format!(
                "      \"checkpoint_bytes\": {},\n",
                cell.checkpoint_bytes
            ));
            out.push_str(&format!("      \"last_seq\": {}\n", cell.last_seq));
            out.push_str("    }");
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"full_replay\": {\n");
        out.push_str(&format!(
            "    \"recover_ms\": {},\n",
            json_number(self.full_replay_ms)
        ));
        out.push_str(&format!(
            "    \"batches_replayed\": {}\n",
            self.full_replay_batches
        ));
        out.push_str("  },\n");
        out.push_str("  \"recovery\": [");
        for (i, cell) in self.recovery.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!(
                "      \"checkpoint_interval\": {},\n",
                cell.checkpoint_interval
            ));
            out.push_str(&format!(
                "      \"recover_ms\": {},\n",
                json_number(cell.recover_ms)
            ));
            out.push_str(&format!(
                "      \"batches_replayed\": {},\n",
                cell.batches_replayed
            ));
            out.push_str(&format!(
                "      \"checkpoint_seq\": {},\n",
                cell.checkpoint_seq
            ));
            out.push_str(&format!(
                "      \"speedup_vs_full_replay\": {}\n",
                json_number(cell.speedup_vs_full_replay)
            ));
            out.push_str("    }");
        }
        out.push_str("\n  ]\n");
        out.push_str("}\n");
        out
    }

    /// Human-readable result tables.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== Durability tier: {} ops in batches of {} over {} vertices ==\n",
            self.config.total_ops, self.config.batch_ops, self.config.n
        ));
        out.push_str(&format!(
            "plain engine (no WAL): {:>12.0} updates/sec\n",
            self.plain_ops_per_sec
        ));
        out.push_str(&format!(
            "{:<12}{:>14}{:>12}{:>12}{:>12}\n",
            "fsync", "updates/sec", "overhead", "wal KiB", "ckpt KiB"
        ));
        for cell in &self.wal_overhead {
            out.push_str(&format!(
                "{:<12}{:>14.0}{:>11.1}%{:>12.1}{:>12.1}\n",
                cell.policy,
                cell.ops_per_sec,
                cell.overhead_percent,
                cell.wal_bytes as f64 / 1024.0,
                cell.checkpoint_bytes as f64 / 1024.0
            ));
        }
        out.push_str(&format!(
            "\nfull-trace replay (no checkpoint): {:.2} ms ({} batches)\n",
            self.full_replay_ms, self.full_replay_batches
        ));
        out.push_str(&format!(
            "{:<12}{:>12}{:>14}{:>14}\n",
            "interval", "recover ms", "tail batches", "speedup"
        ));
        for cell in &self.recovery {
            out.push_str(&format!(
                "{:<12}{:>12.2}{:>14}{:>13.1}x\n",
                cell.checkpoint_interval,
                cell.recover_ms,
                cell.batches_replayed,
                cell.speedup_vs_full_replay
            ));
        }
        out
    }
}

/// Generates `count` always-effective update operations: adds of absent
/// edges, removes of present ones, from a shadow edge set (the same idiom
/// as the recovery differential tests — every op changes state, so every
/// batch carries real work into the log).
fn effective_ops(n: usize, count: usize, seed: u64) -> Vec<BatchOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut present: Vec<(u32, u32)> = Vec::new();
    let mut index: HashSet<(u32, u32)> = HashSet::new();
    let mut ops = Vec::with_capacity(count);
    while ops.len() < count {
        if present.is_empty() || rng.gen_bool(0.62) {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if !index.insert(key) {
                continue;
            }
            present.push(key);
            ops.push(BatchOp::Add(u, v));
        } else {
            let i = rng.gen_range(0..present.len());
            let (u, v) = present.swap_remove(i);
            index.remove(&(u, v));
            ops.push(BatchOp::Remove(u, v));
        }
    }
    ops
}

/// Drives the batch stream through any batch door and returns wall millis.
fn time_batches(store: &dyn BatchConnectivity, ops: &[BatchOp], batch_ops: usize) -> f64 {
    let start = Instant::now();
    for chunk in ops.chunks(batch_ops) {
        std::hint::black_box(store.apply_batch(chunk));
    }
    start.elapsed().as_secs_f64() * 1e3
}

/// A scratch directory under the system temp dir, cleaned before use.
fn bench_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dc-bench-durability-{}-{label}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Sums file sizes in `dir` by extension: (`.dcw` WAL bytes, `.dcc`
/// checkpoint bytes).
fn disk_usage(dir: &Path) -> (u64, u64) {
    let (mut wal, mut ckpt) = (0, 0);
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let len = entry.metadata().map(|m| m.len()).unwrap_or(0);
            match entry.path().extension().and_then(|e| e.to_str()) {
                Some("dcw") => wal += len,
                Some("dcc") => ckpt += len,
                _ => {}
            }
        }
    }
    (wal, ckpt)
}

/// Runs the full durability tier.
pub fn run_durability_bench(config: &DurabilityBenchConfig) -> DurabilityBaseline {
    let ops = effective_ops(config.n, config.total_ops, config.seed);

    // Plain-engine baseline: the identical batch stream, no log at all.
    let mut plain_millis = f64::INFINITY;
    for _ in 0..config.repeats.max(1) {
        let engine = BatchEngine::with_options(config.n, 64, 1);
        plain_millis = plain_millis.min(time_batches(&engine, &ops, config.batch_ops));
    }
    let plain_ops_per_sec = config.total_ops as f64 / (plain_millis / 1e3);

    // WAL overhead, one cell per fsync policy.
    let policies = [
        ("always".to_string(), FsyncPolicy::Always),
        (
            format!("every{}", config.every_n),
            FsyncPolicy::EveryN(config.every_n),
        ),
        ("off".to_string(), FsyncPolicy::Off),
    ];
    let mut wal_overhead = Vec::new();
    for (label, policy) in policies {
        let mut best_millis = f64::INFINITY;
        let mut wal_bytes = 0;
        let mut checkpoint_bytes = 0;
        let mut last_seq = 0;
        for repeat in 0..config.repeats.max(1) {
            let dir = bench_dir(&format!("wal-{label}-{repeat}"));
            let opts = config.durable_options(policy, config.default_checkpoint_interval);
            let store =
                DurableConnectivity::create(&dir, config.n, opts).expect("bench store must create");
            let millis = time_batches(&store, &ops, config.batch_ops);
            assert!(!store.is_poisoned(), "bench run must not poison the log");
            if millis < best_millis {
                best_millis = millis;
                let (w, c) = disk_usage(&dir);
                wal_bytes = w;
                checkpoint_bytes = c;
                last_seq = store.last_seq();
            }
            drop(store);
            let _ = std::fs::remove_dir_all(&dir);
        }
        wal_overhead.push(WalOverheadCell {
            policy: label,
            ops_per_sec: config.total_ops as f64 / (best_millis / 1e3),
            millis: best_millis,
            overhead_percent: (best_millis / plain_millis - 1.0) * 100.0,
            wal_bytes,
            checkpoint_bytes,
            last_seq,
        });
    }

    // Recovery: log one history per interval (fsync off — write-side speed
    // is not under test here), drop the writer, time `recover`. Interval 0
    // is the full-trace-replay baseline every other cell is compared to.
    let measure_recovery = |interval: u64, label: &str| -> (f64, u64, u64) {
        let dir = bench_dir(label);
        let opts = config.durable_options(FsyncPolicy::Off, interval);
        {
            let store =
                DurableConnectivity::create(&dir, config.n, opts).expect("bench store must create");
            for chunk in ops.chunks(config.batch_ops) {
                store.apply_batch(chunk);
            }
            assert!(!store.is_poisoned(), "bench run must not poison the log");
        }
        let mut best_ms = f64::INFINITY;
        let mut batches_replayed = 0;
        let mut checkpoint_seq = 0;
        for _ in 0..config.repeats.max(1) {
            let start = Instant::now();
            let (store, report) =
                DurableConnectivity::recover(&dir, opts).expect("bench history must recover");
            best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
            batches_replayed = report.batches_replayed;
            checkpoint_seq = report.checkpoint_seq;
            drop(store);
        }
        let _ = std::fs::remove_dir_all(&dir);
        (best_ms, batches_replayed, checkpoint_seq)
    };
    let (full_replay_ms, full_replay_batches, _) = measure_recovery(0, "replay-full");
    let mut recovery = Vec::new();
    for &interval in &config.intervals {
        let (recover_ms, batches_replayed, checkpoint_seq) =
            measure_recovery(interval, &format!("replay-ck{interval}"));
        recovery.push(RecoveryCell {
            checkpoint_interval: interval,
            recover_ms,
            batches_replayed,
            checkpoint_seq,
            speedup_vs_full_replay: full_replay_ms / recover_ms.max(1e-9),
        });
    }

    DurabilityBaseline {
        git_rev: crate::ettbench::git_rev(),
        config: config.clone(),
        plain_ops_per_sec,
        plain_millis,
        wal_overhead,
        full_replay_ms,
        full_replay_batches,
        recovery,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_instance_smoke() {
        let config = DurabilityBenchConfig {
            n: 64,
            total_ops: 400,
            batch_ops: 32,
            every_n: 4,
            default_checkpoint_interval: 2,
            intervals: vec![2],
            repeats: 1,
            seed: 7,
        };
        let baseline = run_durability_bench(&config);
        assert_eq!(baseline.wal_overhead.len(), 3);
        for cell in &baseline.wal_overhead {
            assert!(cell.ops_per_sec > 0.0);
            assert!(
                cell.wal_bytes > 0,
                "policy {} left no WAL bytes",
                cell.policy
            );
            assert_eq!(cell.last_seq, (400 / 32) as u64 + 1); // 400/32 = 12.5 -> 13 batches
        }
        assert_eq!(baseline.full_replay_batches, 13);
        let cell = baseline
            .default_interval_cell()
            .expect("default interval measured");
        assert!(
            cell.checkpoint_seq > 0,
            "default-interval run must checkpoint"
        );
        assert!(cell.batches_replayed < baseline.full_replay_batches);
        let json = baseline.to_json();
        assert!(json.contains("\"schema\": \"dc-bench/durability/v1\""));
        assert!(json.contains("\"speedup_vs_full_replay\""));
        assert!(!baseline.render_text().is_empty());
    }

    #[test]
    fn effective_ops_are_always_effective() {
        let ops = effective_ops(32, 500, 3);
        assert_eq!(ops.len(), 500);
        let mut present = HashSet::new();
        for op in &ops {
            let (u, v) = op.endpoints();
            let key = (u.min(v), u.max(v));
            match op {
                BatchOp::Add(..) => assert!(present.insert(key)),
                BatchOp::Remove(..) => assert!(present.remove(&key)),
                _ => panic!("update ops only"),
            }
        }
    }
}
