//! Reproduces Figure 9: the incremental scenario (the whole graph is added
//! concurrently to an empty structure).
use dc_bench::runner::{run_figure, variant_sets, Measure};
use dc_bench::{BenchConfig, Scenario};

fn main() {
    let config = BenchConfig::from_env();
    run_figure(
        "figure9",
        "Figure 9 — incremental scenario (throughput, ops/ms)",
        Scenario::Incremental,
        &variant_sets::incremental_decremental(),
        Measure::Throughput,
        true,
        &config,
    );
}
