//! Reproduces Figure 5: the random-subset scenario with 80% connectivity
//! checks, 10% additions and 10% removals, for all thirteen variants over
//! the small graphs (thread sweep) and the large graphs (max parallelism).
use dc_bench::runner::{run_figure, variant_sets, Measure};
use dc_bench::{BenchConfig, Scenario};

fn main() {
    let config = BenchConfig::from_env();
    run_figure(
        "figure5",
        "Figure 5 — random scenario, 80% reads (throughput, ops/ms)",
        Scenario::RandomSubset { read_percent: 80 },
        &variant_sets::throughput_all(),
        Measure::Throughput,
        true,
        &config,
    );
}
