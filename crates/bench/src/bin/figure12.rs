//! Reproduces Figure 12: the active time rate in the decremental scenario.
use dc_bench::runner::{run_figure, variant_sets, Measure};
use dc_bench::{BenchConfig, Scenario};

fn main() {
    let config = BenchConfig::from_env();
    run_figure(
        "figure12",
        "Figure 12 — active time rate, decremental scenario (%)",
        Scenario::Decremental,
        &variant_sets::active_time_incremental(),
        Measure::ActiveTime,
        false,
        &config,
    );
}
