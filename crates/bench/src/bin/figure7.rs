//! Reproduces Figure 7: the active time rate (time not spent waiting for
//! locks) in the random scenario with 80% reads.
use dc_bench::runner::{run_figure, variant_sets, Measure};
use dc_bench::{BenchConfig, Scenario};

fn main() {
    let config = BenchConfig::from_env();
    run_figure(
        "figure7",
        "Figure 7 — active time rate, random scenario, 80% reads (%)",
        Scenario::RandomSubset { read_percent: 80 },
        &variant_sets::active_time_random(),
        Measure::ActiveTime,
        false,
        &config,
    );
}
