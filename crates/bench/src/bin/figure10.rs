//! Reproduces Figure 10: the decremental scenario (every edge of the graph
//! is removed concurrently from a fully loaded structure).
use dc_bench::runner::{run_figure, variant_sets, Measure};
use dc_bench::{BenchConfig, Scenario};

fn main() {
    let config = BenchConfig::from_env();
    run_figure(
        "figure10",
        "Figure 10 — decremental scenario (throughput, ops/ms)",
        Scenario::Decremental,
        &variant_sets::incremental_decremental(),
        Measure::Throughput,
        true,
        &config,
    );
}
