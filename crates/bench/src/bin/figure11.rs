//! Reproduces Figure 11: the active time rate in the incremental scenario.
use dc_bench::runner::{run_figure, variant_sets, Measure};
use dc_bench::{BenchConfig, Scenario};

fn main() {
    let config = BenchConfig::from_env();
    run_figure(
        "figure11",
        "Figure 11 — active time rate, incremental scenario (%)",
        Scenario::Incremental,
        &variant_sets::active_time_incremental(),
        Measure::ActiveTime,
        false,
        &config,
    );
}
