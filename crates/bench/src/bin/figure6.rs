//! Reproduces Figure 6: the random-subset scenario with 99% connectivity
//! checks for all thirteen variants.
use dc_bench::runner::{run_figure, variant_sets, Measure};
use dc_bench::{BenchConfig, Scenario};

fn main() {
    let config = BenchConfig::from_env();
    run_figure(
        "figure6",
        "Figure 6 — random scenario, 99% reads (throughput, ops/ms)",
        Scenario::RandomSubset { read_percent: 99 },
        &variant_sets::throughput_all(),
        Measure::Throughput,
        true,
        &config,
    );
}
