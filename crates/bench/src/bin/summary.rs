//! Reproduces the paper's headline claim (Section 1 / abstract): the most
//! efficient variant improves on coarse-grained locking by up to ~6x on
//! realistic scenarios and up to ~30x when connectivity queries dominate.
//!
//! This binary measures the speedup of the full algorithm (variants 9 and
//! 10) over the coarse-grained baseline (variant 1) across the small graphs
//! at the highest measured thread count, for the 80%- and 99%-read random
//! scenarios, and prints the per-graph factors plus the average and maximum.

use dc_bench::{run_throughput, BenchConfig, Scenario, Workload};
use dc_graph::GraphSpec;
use dynconn::Variant;

fn main() {
    let config = BenchConfig::from_env();
    let threads = *config.thread_counts.last().unwrap_or(&1);
    let catalog = config.catalog();
    for read_percent in [80u32, 99u32] {
        println!("== Speedup over (1) coarse-grained, random scenario, {read_percent}% reads, {threads} threads ==");
        println!(
            "{:<28}{:>16}{:>16}{:>18}",
            "graph", "(9) vs (1)", "(10) vs (1)", "best variant"
        );
        let mut best_factors = Vec::new();
        for &spec in GraphSpec::table1() {
            let graph = catalog.build(spec);
            let workload = Workload::generate(
                &graph,
                Scenario::RandomSubset { read_percent },
                threads,
                config.ops_per_thread,
                config.seed,
            );
            let measure = |variant: Variant| {
                let structure = variant.build(graph.num_vertices());
                run_throughput(structure.as_ref(), &workload).ops_per_ms
            };
            let base = measure(Variant::CoarseGrained).max(1e-9);
            let ours_fine = measure(Variant::OurAlgorithm);
            let ours_coarse = measure(Variant::OurAlgorithmCoarse);
            let best = ours_fine.max(ours_coarse);
            best_factors.push(best / base);
            println!(
                "{:<28}{:>15.2}x{:>15.2}x{:>17.2}x",
                spec.name(),
                ours_fine / base,
                ours_coarse / base,
                best / base
            );
        }
        let avg: f64 = best_factors.iter().sum::<f64>() / best_factors.len() as f64;
        let max = best_factors.iter().cloned().fold(0.0, f64::max);
        println!("average speedup: {avg:.2}x   maximum speedup: {max:.2}x\n");
    }
}
