//! Reproduces the paper's headline claim (Section 1 / abstract): the most
//! efficient variant improves on coarse-grained locking by up to ~6x on
//! realistic scenarios and up to ~30x when connectivity queries dominate.
//!
//! This binary measures the speedup of the full algorithm (variants 9 and
//! 10) over the coarse-grained baseline (variant 1) across the small graphs
//! at the highest measured thread count, for the 80%- and 99%-read random
//! scenarios, and prints the per-graph factors plus the average and maximum.

use dc_bench::runner::run_adjacency_baseline;
use dc_bench::{
    run_backends_bench, run_batch_bench, run_durability_bench, run_ett_bench, run_faults_bench,
    run_latency_bench, run_obs_bench, run_read_bench, run_throughput, run_workload_bench,
    BackendsBenchConfig, BatchBenchConfig, BenchConfig, DurabilityBenchConfig, EttBenchConfig,
    FaultsBenchConfig, LatencyBenchConfig, ObsBenchConfig, ReadBenchConfig, Scenario, Workload,
    WorkloadBenchConfig,
};
use dc_graph::GraphSpec;
use dynconn::Variant;

fn main() {
    let config = BenchConfig::from_env();
    if std::env::var("DC_BENCH_ETT_ONLY")
        .map(|v| v != "0")
        .unwrap_or(false)
    {
        emit_ett_baseline();
        return;
    }
    if std::env::var("DC_BENCH_ADJACENCY_ONLY")
        .map(|v| v != "0")
        .unwrap_or(false)
    {
        emit_adjacency_baseline(&config);
        return;
    }
    if std::env::var("DC_BENCH_BATCH_ONLY")
        .map(|v| v != "0")
        .unwrap_or(false)
    {
        emit_batch_baseline();
        return;
    }
    if std::env::var("DC_BENCH_WORKLOADS_ONLY")
        .map(|v| v != "0")
        .unwrap_or(false)
    {
        emit_workload_baseline();
        return;
    }
    if std::env::var("DC_BENCH_READS_ONLY")
        .map(|v| v != "0")
        .unwrap_or(false)
    {
        emit_read_baseline();
        return;
    }
    if std::env::var("DC_BENCH_DURABILITY_ONLY")
        .map(|v| v != "0")
        .unwrap_or(false)
    {
        emit_durability_baseline();
        return;
    }
    if std::env::var("DC_BENCH_LATENCY_ONLY")
        .map(|v| v != "0")
        .unwrap_or(false)
    {
        emit_latency_baseline();
        return;
    }
    if std::env::var("DC_BENCH_OBS_ONLY")
        .map(|v| v != "0")
        .unwrap_or(false)
    {
        emit_obs_baseline();
        return;
    }
    if std::env::var("DC_BENCH_BACKENDS_ONLY")
        .map(|v| v != "0")
        .unwrap_or(false)
    {
        emit_backends_baseline();
        return;
    }
    if std::env::var("DC_BENCH_FAULTS_ONLY")
        .map(|v| v != "0")
        .unwrap_or(false)
    {
        emit_faults_baseline();
        return;
    }
    let threads = *config.thread_counts.last().unwrap_or(&1);
    let catalog = config.catalog();
    for read_percent in [80u32, 99u32] {
        println!("== Speedup over (1) coarse-grained, random scenario, {read_percent}% reads, {threads} threads ==");
        println!(
            "{:<28}{:>16}{:>16}{:>18}",
            "graph", "(9) vs (1)", "(10) vs (1)", "best variant"
        );
        let mut best_factors = Vec::new();
        for &spec in GraphSpec::table1() {
            let graph = catalog.build(spec);
            let workload = Workload::generate(
                &graph,
                Scenario::RandomSubset { read_percent },
                threads,
                config.ops_per_thread,
                config.seed,
            );
            let measure = |variant: Variant| {
                let structure = variant.build(graph.num_vertices());
                run_throughput(structure.as_ref(), &workload).ops_per_ms
            };
            let base = measure(Variant::CoarseGrained).max(1e-9);
            let ours_fine = measure(Variant::OurAlgorithm);
            let ours_coarse = measure(Variant::OurAlgorithmCoarse);
            let best = ours_fine.max(ours_coarse);
            best_factors.push(best / base);
            println!(
                "{:<28}{:>15.2}x{:>15.2}x{:>17.2}x",
                spec.name(),
                ours_fine / base,
                ours_coarse / base,
                best / base
            );
        }
        let avg: f64 = best_factors.iter().sum::<f64>() / best_factors.len() as f64;
        let max = best_factors.iter().cloned().fold(0.0, f64::max);
        println!("average speedup: {avg:.2}x   maximum speedup: {max:.2}x\n");
    }
    emit_adjacency_baseline(&config);
    emit_ett_baseline();
    emit_batch_baseline();
    emit_workload_baseline();
    emit_read_baseline();
    emit_durability_baseline();
    emit_latency_baseline();
    emit_obs_baseline();
    emit_backends_baseline();
    emit_faults_baseline();
}

/// Measures the fault-harness tier (the batch-engine adapter workload with
/// chaos injection uninstalled, armed and disabled again, plus the
/// recovery-from-poison latency of `DurableConnectivity::rebuild`), writes
/// `BENCH_faults.json` and gates on the harness's core promise: disabled
/// injection checks cost at most 3% of adapter throughput.
fn emit_faults_baseline() {
    let config = FaultsBenchConfig::from_env();
    let baseline = run_faults_bench(&config);
    print!("{}", baseline.render_text());
    let path = "BENCH_faults.json";
    match std::fs::write(path, baseline.to_json()) {
        Ok(()) => println!("faults baseline written to {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
    if baseline.gate_passes() {
        println!(
            "gate: disabled injection checks cost {:.2}% of adapter throughput (ceiling {:.1}%)",
            baseline.disabled_overhead_percent,
            dc_bench::faultsbench::GATE_MAX_DISABLED_OVERHEAD_PERCENT
        );
    } else {
        eprintln!(
            "gate FAILED: disabled injection checks cost {:.2}% of adapter throughput, \
             ceiling is {:.1}%",
            baseline.disabled_overhead_percent,
            dc_bench::faultsbench::GATE_MAX_DISABLED_OVERHEAD_PERCENT
        );
        std::process::exit(1);
    }
}

/// Measures the backend-shootout tier (every supported `(forest backend,
/// variant)` combination under read-storm, churn and bulk-load), writes
/// `BENCH_backends.json` and gates on the oracle agreement pass: a backend
/// whose lock-free-read or batch-engine variant diverges from the BFS
/// oracle fails the run outright.
fn emit_backends_baseline() {
    let config = BackendsBenchConfig::from_env();
    let baseline = run_backends_bench(&config);
    print!("{}", baseline.render_text());
    let path = "BENCH_backends.json";
    match std::fs::write(path, baseline.to_json()) {
        Ok(()) => println!("backends baseline written to {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
    if baseline.agreement_passes() {
        for agreement in &baseline.agreement {
            println!(
                "gate: backend {} agreed with the oracle on {} checks",
                agreement.backend, agreement.checked
            );
        }
    } else {
        for agreement in &baseline.agreement {
            if agreement.checked == 0 || !agreement.passed {
                eprintln!(
                    "gate FAILED: backend {} agreement pass {} ({} checks)",
                    agreement.backend,
                    if agreement.passed {
                        "ran dry"
                    } else {
                        "diverged"
                    },
                    agreement.checked
                );
            }
        }
        std::process::exit(1);
    }
}

/// Measures the observability tier (the read-storm workload with `dc_obs`
/// disabled, metrics-only and metrics+tracing against an untouched
/// baseline), writes `BENCH_obs.json` and gates on the crate's core
/// promise: switched off, the compiled-in instrumentation costs at most
/// 3% of read-storm throughput.
fn emit_obs_baseline() {
    let config = ObsBenchConfig::from_env();
    let baseline = run_obs_bench(&config);
    print!("{}", baseline.render_text());
    let path = "BENCH_obs.json";
    match std::fs::write(path, baseline.to_json()) {
        Ok(()) => println!("obs baseline written to {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
    if baseline.gate_passes() {
        println!(
            "gate: disabled observability costs {:.2}% of read-storm throughput (ceiling {:.1}%)",
            baseline.disabled_overhead_percent,
            dc_bench::obsbench::GATE_MAX_DISABLED_OVERHEAD_PERCENT
        );
    } else {
        eprintln!(
            "gate FAILED: disabled observability costs {:.2}% of read-storm throughput, \
             ceiling is {:.1}%",
            baseline.disabled_overhead_percent,
            dc_bench::obsbench::GATE_MAX_DISABLED_OVERHEAD_PERCENT
        );
        std::process::exit(1);
    }
}

/// Measures the huge-graph latency tier (scalar vs interleaved bulk reads,
/// hints on/off, read-storm and zipf-read mixes), writes
/// `BENCH_latency.json` and gates on the point of the interleaved engine:
/// at full scale (n >= 10M) the cold-read cell must show at least the
/// 1.3x speedup floor; at smaller scales (quick/CI runs) the differential
/// agreement pass inside the run and the presence of both sides of the
/// comparison are what is checked.
fn emit_latency_baseline() {
    let config = LatencyBenchConfig::from_env();
    let baseline = run_latency_bench(&config);
    print!("{}", baseline.render_text());
    let path = "BENCH_latency.json";
    match std::fs::write(path, baseline.to_json()) {
        Ok(()) => println!("latency baseline written to {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
    let speedup = baseline.read_storm_cold_speedup();
    if baseline.gate_passes() {
        println!(
            "gate: cold-read speedup {:.2}x (floor {:.1}x, {})",
            speedup.unwrap_or(0.0),
            dc_bench::latencybench::GATE_SPEEDUP_FLOOR,
            if baseline.gate_applies() {
                "binding at full scale"
            } else {
                "not binding below 10M vertices"
            }
        );
    } else {
        eprintln!(
            "gate FAILED: cold-read speedup {:.2}x below the {:.1}x floor at n={}",
            speedup.unwrap_or(0.0),
            dc_bench::latencybench::GATE_SPEEDUP_FLOOR,
            baseline.vertices
        );
        std::process::exit(1);
    }
}

/// Measures the durability tier (WAL overhead per fsync policy, recovery
/// time across a checkpoint-interval sweep), writes `BENCH_durability.json`
/// and gates on the point of checkpoints: at the default interval,
/// checkpoint-load + tail-replay must recover at least 5x faster than
/// replaying the whole log from scratch.
fn emit_durability_baseline() {
    let config = DurabilityBenchConfig::from_env();
    let baseline = run_durability_bench(&config);
    print!("{}", baseline.render_text());
    let path = "BENCH_durability.json";
    match std::fs::write(path, baseline.to_json()) {
        Ok(()) => println!("durability baseline written to {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
    let Some(cell) = baseline.default_interval_cell() else {
        eprintln!(
            "gate FAILED: default checkpoint interval {} missing from the recovery sweep",
            config.default_checkpoint_interval
        );
        std::process::exit(1);
    };
    if cell.speedup_vs_full_replay >= 5.0 {
        println!(
            "gate: checkpoint + tail replay at interval {} is {:.1}x faster than full replay \
             ({:.2} ms vs {:.2} ms)",
            cell.checkpoint_interval,
            cell.speedup_vs_full_replay,
            cell.recover_ms,
            baseline.full_replay_ms
        );
    } else {
        eprintln!(
            "gate FAILED: checkpoint + tail replay at interval {} is only {:.1}x faster than \
             full replay ({:.2} ms vs {:.2} ms), need >= 5x",
            cell.checkpoint_interval,
            cell.speedup_vs_full_replay,
            cell.recover_ms,
            baseline.full_replay_ms
        );
        std::process::exit(1);
    }
}

/// Measures the read-path tier (read-storm, zipf-read, mixed-churn — all
/// fourteen variants with the root-hint cache on and off), writes
/// `BENCH_reads.json`, and gates on the hint cache actually working: the
/// read-storm scenario must show a non-zero hit rate on the lock-free-read
/// variants, in particular fine-grained + non-blocking reads (8) and the
/// paper's full algorithm (9).
fn emit_read_baseline() {
    let config = ReadBenchConfig::from_env();
    let baseline = run_read_bench(&config);
    print!("{}", baseline.render_text());
    let path = "BENCH_reads.json";
    match std::fs::write(path, baseline.to_json()) {
        Ok(()) => println!("read baseline written to {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
    let storm = baseline
        .scenario("read-storm")
        .expect("read-storm scenario must be measured");
    let mut failed = false;
    for number in [8u8, 9u8] {
        match storm.run(number) {
            Some(run) if run.hints_on.hint_hits > 0 => {
                println!(
                    "gate: variant {number} read-storm hint hit rate {:.1}% ({} hits)",
                    run.hints_on.hit_rate_percent(),
                    run.hints_on.hint_hits
                );
            }
            Some(run) => {
                eprintln!(
                    "gate FAILED: variant {number} saw no hint hits on the read storm \
                     ({} misses)",
                    run.hints_on.hint_misses
                );
                failed = true;
            }
            None => {
                eprintln!("gate FAILED: variant {number} missing from the read-storm scenario");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Measures the workload-subsystem scenarios (power-law + Zipf, phased
/// lifecycle, sliding window, trace replay — all fourteen variants, with
/// per-phase waitstats) and writes `BENCH_workloads.json`.
fn emit_workload_baseline() {
    let config = WorkloadBenchConfig::from_env();
    let baseline = run_workload_bench(&config);
    print!("{}", baseline.render_text());
    let path = "BENCH_workloads.json";
    match std::fs::write(path, baseline.to_json()) {
        Ok(()) => println!("workload baseline written to {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
}

/// Measures the batch-engine scenarios (burst vs every single-op variant,
/// bulk load, batch-size/compaction sweep, adapter-on-existing-scenarios)
/// and writes `BENCH_batch.json`.
fn emit_batch_baseline() {
    let config = BatchBenchConfig::from_env();
    let baseline = run_batch_bench(&config);
    print!("{}", baseline.render_text());
    let path = "BENCH_batch.json";
    match std::fs::write(path, baseline.to_json()) {
        Ok(()) => println!("batch baseline written to {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
}

/// Measures the ETT node-layer scenarios (incremental, decremental, churn,
/// churn with readers) and writes `BENCH_ett.json` — current numbers plus
/// the frozen PR 1 baseline — so the node-layer perf trajectory is tracked
/// alongside the adjacency layer's.
fn emit_ett_baseline() {
    let config = EttBenchConfig::from_env();
    let baseline = run_ett_bench(&config);
    print!("{}", baseline.render_text());
    let path = "BENCH_ett.json";
    match std::fs::write(path, baseline.to_json()) {
        Ok(()) => println!("ETT baseline written to {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
}

/// Measures the adjacency-layer perf baseline (random-subset 50% reads,
/// incremental, decremental — at 1 and 8 threads) and writes the
/// machine-readable `BENCH_adjacency.json` so future PRs can track the
/// trajectory of the hot adjacency paths.
fn emit_adjacency_baseline(config: &BenchConfig) {
    let catalog = config.catalog();
    let graph = catalog.build(GraphSpec::RandomDense);
    // The tracked baseline is 1 and 8 threads; an explicit DC_BENCH_THREADS
    // overrides it like everywhere else in the harness.
    let threads: Vec<usize> = if std::env::var("DC_BENCH_THREADS").is_ok() {
        config.thread_counts.clone()
    } else {
        vec![1, 8]
    };
    let baseline = run_adjacency_baseline(
        &graph,
        GraphSpec::RandomDense.name(),
        &threads,
        config.ops_per_thread,
        config.seed,
    );
    println!("== Adjacency-layer baseline ({}) ==", baseline.graph);
    println!(
        "{:<24}{:>9}{:>16}{:>16}",
        "scenario", "threads", "coarse ops/s", "ours ops/s"
    );
    let mut keys: Vec<(String, usize)> = baseline
        .cells
        .iter()
        .map(|c| (c.scenario.clone(), c.threads))
        .collect();
    keys.dedup();
    for (scenario, threads) in keys {
        let get = |variant: &str| {
            baseline
                .cells
                .iter()
                .find(|c| c.scenario == scenario && c.threads == threads && c.variant == variant)
                .map(|c| c.ops_per_sec)
                .unwrap_or(0.0)
        };
        println!(
            "{:<24}{:>9}{:>16.0}{:>16.0}",
            scenario,
            threads,
            get("coarse"),
            get("ours")
        );
    }
    let path = "BENCH_adjacency.json";
    match std::fs::write(path, baseline.to_json()) {
        Ok(()) => println!("baseline written to {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
}
