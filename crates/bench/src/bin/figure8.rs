//! Reproduces Figure 8: the active time rate in the random scenario with
//! 99% reads.
use dc_bench::runner::{run_figure, variant_sets, Measure};
use dc_bench::{BenchConfig, Scenario};

fn main() {
    let config = BenchConfig::from_env();
    run_figure(
        "figure8",
        "Figure 8 — active time rate, random scenario, 99% reads (%)",
        Scenario::RandomSubset { read_percent: 99 },
        &variant_sets::active_time_random(),
        Measure::ActiveTime,
        false,
        &config,
    );
}
