//! The huge-graph latency tier, emitted as `BENCH_latency.json`.
//!
//! Every earlier tier reports *throughput*; this one measures the shape of
//! the per-query latency distribution on graphs large enough that the
//! parent-pointer climbs of `connected` are DRAM-bound (default n = 10M
//! vertices, scalable to 50M+ via `DC_BENCH_SCALE`). At that size the
//! scalar Listing-1 read walks one cache-missing hop at a time, so memory
//! latency — not instruction count — dominates, and the interleaved,
//! prefetched bulk-read path (`EulerForest::connected_many_with`) can
//! overlap W independent climbs to hide it.
//!
//! Two query mixes run over one shared structure (queries never mutate,
//! so a single expensive load serves every cell):
//!
//! * **read-storm** — uniform random pairs: effectively cold reads, every
//!   climb hop misses cache. The headline cell; the CI gate asserts the
//!   interleaved engine beats scalar by [`GATE_SPEEDUP_FLOOR`] here (with
//!   hints off, i.e. on the pure climbing protocol) whenever the run is at
//!   full scale ([`GATE_MIN_VERTICES`]).
//! * **zipf-read** — Zipf(θ = 0.99) hot-set pairs: the cache-friendly
//!   regime where the scalar path already sits in LLC and interleaving
//!   must not cost anything.
//!
//! Each mix runs scalar and interleaved at W ∈ {1, 4, 8, 16}, hints on and
//! off (5 engines × 2 hint modes × 2 mixes = 20 cells). Per-query latency
//! is derived from per-batch timing (batches of [`LatencyBenchConfig::batch`]
//! pairs through `connected_many`), recorded into the fixed-bucket
//! [`LatencyHistogram`], so p50/p90/p99/p999 ride alongside the mean.
//!
//! The structure is loaded **streamed**: a synthetic SNAP-format edge text
//! is generated lazily by an in-memory [`std::io::Read`] source and fed
//! through [`dc_graph::EdgeBatchReader`], so no whole-graph edge list is
//! ever materialized — the same shape a 50M-vertex load from disk would
//! take. Before measuring, a differential pass checks the interleaved
//! engine against the scalar oracle on a query prefix for every (width,
//! hints) combination and panics on any disagreement.

use crate::config::bench_scale;
use crate::report::{json_number, json_string};
use crate::stats::LatencyHistogram;
use dc_graph::EdgeBatchReader;
use dynconn::Hdt;
use std::io::Read;
use std::time::Instant;

/// The CI gate's speedup floor: at full scale, the best interleaved cell
/// must beat scalar by at least this factor on cold reads (read-storm,
/// hints off).
pub const GATE_SPEEDUP_FLOOR: f64 = 1.3;

/// The gate only binds at or above this vertex count — below it the
/// structure fits in cache, climbs stop being DRAM-bound, and the speedup
/// the gate protects is not expected (quick/CI runs still check
/// scalar/interleaved agreement and distribution sanity).
pub const GATE_MIN_VERTICES: usize = 10_000_000;

/// Streaming load batch size (edges per `EdgeBatchReader` batch).
const LOAD_BATCH: usize = 65_536;

/// Differential-oracle prefix length per (scenario, engine, hints) cell.
const AGREEMENT_PREFIX: usize = 2_048;

/// Scenario parameters for the latency tier.
#[derive(Clone, Debug)]
pub struct LatencyBenchConfig {
    /// Vertices of the synthetic graph (one spanning tree component).
    pub vertices: usize,
    /// Extra non-tree edges streamed on top of the `vertices - 1` tree
    /// edges (they exercise the loader, not connectivity).
    pub extra_edges: usize,
    /// Queries measured per cell.
    pub queries_per_cell: usize,
    /// Pairs per `connected_many` call (per-batch timing granularity).
    pub batch: usize,
    /// Interleave widths measured (scalar always runs in addition).
    pub widths: Vec<usize>,
    /// PRNG seed.
    pub seed: u64,
    /// The `DC_BENCH_SCALE` factor the sizes were derived from.
    pub scale: f64,
}

impl LatencyBenchConfig {
    /// The tracked configuration: n = 10M × [`bench_scale`] (so
    /// `DC_BENCH_SCALE=5` reaches 50M and `DC_BENCH_SCALE=0.01` is a fast
    /// sanity run), shrunk outright under `DC_BENCH_QUICK=1`.
    pub fn from_env() -> Self {
        let quick = std::env::var("DC_BENCH_QUICK")
            .map(|v| v != "0")
            .unwrap_or(false);
        if quick {
            return LatencyBenchConfig {
                vertices: 20_000,
                extra_edges: 4_000,
                queries_per_cell: 4_000,
                batch: 256,
                widths: vec![1, 4, 8, 16],
                seed: 0x1A7E,
                scale: 1.0,
            };
        }
        let scale = bench_scale();
        let vertices = ((10_000_000f64 * scale).round() as usize).max(1_024);
        LatencyBenchConfig {
            vertices,
            extra_edges: vertices / 8,
            queries_per_cell: 200_000,
            batch: 256,
            widths: vec![1, 4, 8, 16],
            seed: 0x1A7E,
            scale,
        }
    }
}

/// One measured (scenario, engine, hints) cell.
#[derive(Clone, Debug)]
pub struct LatencyCell {
    /// Scenario key ("read-storm" / "zipf-read").
    pub scenario: String,
    /// Engine label ("scalar" / "interleaved-w8").
    pub engine: String,
    /// Interleave width; 0 for the scalar engine.
    pub width: usize,
    /// Whether the root-hint cache was enabled.
    pub hints: bool,
    /// Queries measured.
    pub queries: usize,
    /// Mean per-query latency in nanoseconds.
    pub mean_ns: f64,
    /// Median per-query latency (batch-mean resolution), nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile, nanoseconds.
    pub p90_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th percentile, nanoseconds.
    pub p999_ns: u64,
    /// Worst observed (batch-mean) per-query latency, nanoseconds.
    pub max_ns: u64,
    /// How many queried pairs were connected (cross-engine checksum: every
    /// engine must agree on this for the same scenario).
    pub connected_true: u64,
}

/// The full latency measurement, serialized as `BENCH_latency.json`.
#[derive(Clone, Debug, Default)]
pub struct LatencyBaseline {
    /// Short git revision.
    pub git_rev: String,
    /// The configuration the numbers were measured at.
    pub config: Option<LatencyBenchConfig>,
    /// Vertices actually interned by the streaming load.
    pub vertices: usize,
    /// Edges streamed into the structure.
    pub edges_loaded: usize,
    /// Wall-clock load time, milliseconds.
    pub load_millis: f64,
    /// Queries cross-checked between the scalar oracle and each
    /// interleaved configuration before measuring.
    pub agreement_queries: usize,
    /// All measured cells.
    pub cells: Vec<LatencyCell>,
}

impl LatencyBaseline {
    /// The cell for (`scenario`, `engine`, `hints`), if measured.
    pub fn cell(&self, scenario: &str, engine: &str, hints: bool) -> Option<&LatencyCell> {
        self.cells
            .iter()
            .find(|c| c.scenario == scenario && c.engine == engine && c.hints == hints)
    }

    /// The gate quantity: scalar mean over the best interleaved mean on
    /// the cold-read cell (read-storm, hints off). `None` until both sides
    /// were measured.
    pub fn read_storm_cold_speedup(&self) -> Option<f64> {
        let scalar = self.cell("read-storm", "scalar", false)?;
        let best = self
            .cells
            .iter()
            .filter(|c| c.scenario == "read-storm" && !c.hints && c.width > 0)
            .map(|c| c.mean_ns)
            .fold(f64::INFINITY, f64::min);
        if best.is_finite() {
            Some(scalar.mean_ns / best.max(1e-9))
        } else {
            None
        }
    }

    /// Whether the speedup gate binds for this run (full-scale only).
    pub fn gate_applies(&self) -> bool {
        self.vertices >= GATE_MIN_VERTICES
    }

    /// `true` when the run satisfies the gate: at full scale the cold-read
    /// speedup must reach [`GATE_SPEEDUP_FLOOR`]; below full scale the run
    /// only has to have produced both sides of the comparison (agreement
    /// is enforced earlier, during the run itself).
    pub fn gate_passes(&self) -> bool {
        match self.read_storm_cold_speedup() {
            Some(speedup) => !self.gate_applies() || speedup >= GATE_SPEEDUP_FLOOR,
            None => false,
        }
    }
}

/// `splitmix64` — the PRNG behind the synthetic stream and the uniform
/// query mix (deterministic, seedable, no dependency on `rand` state size).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An in-memory SNAP-format edge-list source generated lazily: a random
/// attachment tree (`parent i`-lines for i in 1..n, parent uniform below
/// i — one connected component, treap depth O(log n)) followed by `extra`
/// uniform non-tree edges. Only one small text block exists at a time, so
/// feeding this through [`EdgeBatchReader`] loads n = 50M without ever
/// materializing the edge list.
struct SyntheticEdgeStream {
    n: u64,
    extra: u64,
    next_vertex: u64,
    emitted_extra: u64,
    state: u64,
    buf: Vec<u8>,
    pos: usize,
}

impl SyntheticEdgeStream {
    fn new(n: usize, extra: usize, seed: u64) -> Self {
        SyntheticEdgeStream {
            n: n.max(2) as u64,
            extra: extra as u64,
            next_vertex: 1,
            emitted_extra: 0,
            state: seed,
            buf: Vec::new(),
            pos: 0,
        }
    }

    fn refill(&mut self) {
        use std::io::Write;
        self.buf.clear();
        self.pos = 0;
        let mut lines = 0;
        while lines < 4_096 && self.next_vertex < self.n {
            let v = self.next_vertex;
            let p = splitmix64(&mut self.state) % v;
            writeln!(self.buf, "{p} {v}").expect("writing to a Vec cannot fail");
            self.next_vertex += 1;
            lines += 1;
        }
        while lines < 4_096 && self.emitted_extra < self.extra {
            let u = splitmix64(&mut self.state) % self.n;
            let v = splitmix64(&mut self.state) % self.n;
            // Self-loops are legal SNAP input; the reader drops them.
            writeln!(self.buf, "{u} {v}").expect("writing to a Vec cannot fail");
            self.emitted_extra += 1;
            lines += 1;
        }
    }
}

impl Read for SyntheticEdgeStream {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.buf.len() {
            self.refill();
            if self.buf.is_empty() {
                return Ok(0);
            }
        }
        let len = out.len().min(self.buf.len() - self.pos);
        out[..len].copy_from_slice(&self.buf[self.pos..self.pos + len]);
        self.pos += len;
        Ok(len)
    }
}

/// The uniform cold-read query mix.
fn uniform_pairs(n: usize, count: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut state = seed;
    (0..count)
        .map(|_| {
            let u = (splitmix64(&mut state) % n as u64) as u32;
            let v = (splitmix64(&mut state) % n as u64) as u32;
            (u, v)
        })
        .collect()
}

/// The Zipf(θ = 0.99) hot-set query mix.
fn zipf_pairs(n: usize, count: usize, seed: u64) -> Vec<(u32, u32)> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let zipf = dc_workloads::Zipf::new(n, 0.99);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (zipf.sample(&mut rng) as u32, zipf.sample(&mut rng) as u32))
        .collect()
}

/// Which bulk-read door a cell goes through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Engine {
    Scalar,
    Interleaved(usize),
}

impl Engine {
    fn label(&self) -> String {
        match self {
            Engine::Scalar => "scalar".to_string(),
            Engine::Interleaved(w) => format!("interleaved-w{w}"),
        }
    }

    fn width(&self) -> usize {
        match self {
            Engine::Scalar => 0,
            Engine::Interleaved(w) => *w,
        }
    }

    /// Configures `hdt` and runs one `connected_many` round through the
    /// engine's door.
    fn run(&self, hdt: &Hdt, pairs: &[(u32, u32)], out: &mut Vec<bool>) {
        match self {
            Engine::Scalar => hdt.connected_many_scalar(pairs, out),
            Engine::Interleaved(_) => hdt.connected_many(pairs, out),
        }
    }

    fn configure(&self, hdt: &Hdt) {
        if let Engine::Interleaved(w) = self {
            hdt.set_interleaved_reads(true);
            hdt.set_interleave_width(*w);
        }
    }
}

/// Measures one cell: `queries` in `batch`-sized rounds through the
/// engine, per-query latency derived from per-batch timing.
fn measure_cell(
    hdt: &Hdt,
    scenario: &str,
    engine: Engine,
    hints: bool,
    queries: &[(u32, u32)],
    batch: usize,
) -> LatencyCell {
    hdt.set_read_hints(hints);
    engine.configure(hdt);
    let mut histogram = LatencyHistogram::new();
    let mut out = Vec::with_capacity(batch);
    let mut total_nanos = 0u64;
    let mut connected_true = 0u64;
    for chunk in queries.chunks(batch.max(1)) {
        // `connected_many` appends; the timed region starts from an empty
        // (but capacity-warm) buffer every round.
        out.clear();
        let before = Instant::now();
        engine.run(hdt, chunk, &mut out);
        let nanos = before.elapsed().as_nanos() as u64;
        total_nanos += nanos;
        histogram.record_n(nanos / chunk.len() as u64, chunk.len() as u64);
        connected_true += out.iter().filter(|&&c| c).count() as u64;
    }
    LatencyCell {
        scenario: scenario.to_string(),
        engine: engine.label(),
        width: engine.width(),
        hints,
        queries: queries.len(),
        mean_ns: total_nanos as f64 / queries.len().max(1) as f64,
        p50_ns: histogram.p50(),
        p90_ns: histogram.p90(),
        p99_ns: histogram.p99(),
        p999_ns: histogram.p999(),
        max_ns: histogram.max(),
        connected_true,
    }
}

/// Checks the interleaved engine against the scalar oracle on a query
/// prefix, for every (width, hints) combination of `config`.
///
/// # Panics
/// Panics on the first disagreement — a wrong answer invalidates every
/// number the tier would report, so the bench refuses to continue.
fn check_agreement(hdt: &Hdt, config: &LatencyBenchConfig, queries: &[(u32, u32)]) -> usize {
    let prefix = &queries[..queries.len().min(AGREEMENT_PREFIX)];
    let mut expected = Vec::new();
    let mut got = Vec::new();
    let mut checked = 0;
    for &hints in &[false, true] {
        hdt.set_read_hints(hints);
        expected.clear();
        hdt.connected_many_scalar(prefix, &mut expected);
        for &width in &config.widths {
            let engine = Engine::Interleaved(width);
            engine.configure(hdt);
            got.clear();
            hdt.connected_many(prefix, &mut got);
            assert_eq!(
                expected, got,
                "interleaved (w={width}, hints={hints}) disagrees with the scalar oracle"
            );
            checked += prefix.len();
        }
    }
    checked
}

/// Runs the full latency tier: streamed load, differential agreement
/// check, then all 20 cells.
pub fn run_latency_bench(config: &LatencyBenchConfig) -> LatencyBaseline {
    let mut baseline = LatencyBaseline {
        git_rev: crate::ettbench::git_rev(),
        config: Some(config.clone()),
        ..Default::default()
    };

    // --- streamed load ------------------------------------------------------
    let hdt = Hdt::new(config.vertices);
    let started = Instant::now();
    let stream = SyntheticEdgeStream::new(config.vertices, config.extra_edges, config.seed);
    let mut reader = EdgeBatchReader::new(stream, LOAD_BATCH);
    let mut edges = 0usize;
    for batch in reader.by_ref() {
        let batch = batch.expect("the synthetic stream is well-formed by construction");
        for edge in &batch {
            hdt.add_edge_locked(edge.u(), edge.v());
        }
        edges += batch.len();
    }
    baseline.vertices = reader.num_vertices_seen();
    baseline.edges_loaded = edges;
    baseline.load_millis = started.elapsed().as_secs_f64() * 1e3;

    // --- query mixes (shared across every cell: queries never mutate) ------
    let n = baseline.vertices;
    let scenarios = [
        (
            "read-storm",
            uniform_pairs(n, config.queries_per_cell, config.seed ^ 0x5707),
        ),
        (
            "zipf-read",
            zipf_pairs(n, config.queries_per_cell, config.seed ^ 0x21F),
        ),
    ];

    // --- differential oracle before any number is trusted -------------------
    for (_, queries) in &scenarios {
        baseline.agreement_queries += check_agreement(&hdt, config, queries);
    }

    // --- the 20 cells -------------------------------------------------------
    let engines: Vec<Engine> = std::iter::once(Engine::Scalar)
        .chain(config.widths.iter().map(|&w| Engine::Interleaved(w)))
        .collect();
    for (name, queries) in &scenarios {
        for &hints in &[false, true] {
            for &engine in &engines {
                baseline.cells.push(measure_cell(
                    &hdt,
                    name,
                    engine,
                    hints,
                    queries,
                    config.batch,
                ));
            }
        }
    }
    // Leave the structure in its default read configuration (it is dropped
    // right after, but the symmetry keeps measure ordering honest).
    hdt.set_read_hints(true);
    baseline
}

impl LatencyBaseline {
    /// Renders the measurement as pretty JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"dc-bench/latency/v1\",\n");
        out.push_str(&format!("  \"git_rev\": {},\n", json_string(&self.git_rev)));
        if let Some(config) = &self.config {
            out.push_str("  \"config\": {\n");
            out.push_str(&format!("    \"vertices\": {},\n", config.vertices));
            out.push_str(&format!("    \"extra_edges\": {},\n", config.extra_edges));
            out.push_str(&format!(
                "    \"queries_per_cell\": {},\n",
                config.queries_per_cell
            ));
            out.push_str(&format!("    \"batch\": {},\n", config.batch));
            let widths: Vec<String> = config.widths.iter().map(|w| w.to_string()).collect();
            out.push_str(&format!("    \"widths\": [{}],\n", widths.join(", ")));
            out.push_str(&format!("    \"seed\": {},\n", config.seed));
            out.push_str(&format!("    \"scale\": {}\n", json_number(config.scale)));
            out.push_str("  },\n");
        }
        out.push_str("  \"load\": {\n");
        out.push_str(&format!("    \"vertices\": {},\n", self.vertices));
        out.push_str(&format!("    \"edges\": {},\n", self.edges_loaded));
        out.push_str(&format!(
            "    \"millis\": {}\n",
            json_number(self.load_millis)
        ));
        out.push_str("  },\n");
        out.push_str(&format!(
            "  \"agreement_queries\": {},\n",
            self.agreement_queries
        ));
        out.push_str("  \"gate\": {\n");
        out.push_str(&format!(
            "    \"speedup_floor\": {},\n",
            json_number(GATE_SPEEDUP_FLOOR)
        ));
        out.push_str(&format!("    \"min_vertices\": {},\n", GATE_MIN_VERTICES));
        out.push_str(&format!("    \"applies\": {},\n", self.gate_applies()));
        out.push_str(&format!(
            "    \"read_storm_cold_speedup\": {},\n",
            json_number(self.read_storm_cold_speedup().unwrap_or(0.0))
        ));
        out.push_str(&format!("    \"passes\": {}\n", self.gate_passes()));
        out.push_str("  },\n");
        out.push_str("  \"scenarios\": {");
        let mut names: Vec<&str> = self.cells.iter().map(|c| c.scenario.as_str()).collect();
        names.dedup();
        for (si, name) in names.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {{", json_string(name)));
            let cells: Vec<&LatencyCell> =
                self.cells.iter().filter(|c| c.scenario == *name).collect();
            for (ci, cell) in cells.iter().enumerate() {
                if ci > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n      \"{}{}\": {{ \"width\": {}, \"hints\": {}, \"queries\": {}, \
                     \"mean_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \
                     \"p999_ns\": {}, \"max_ns\": {}, \"connected_true\": {} }}",
                    cell.engine,
                    if cell.hints { "+hints" } else { "" },
                    cell.width,
                    cell.hints,
                    cell.queries,
                    json_number(cell.mean_ns),
                    cell.p50_ns,
                    cell.p90_ns,
                    cell.p99_ns,
                    cell.p999_ns,
                    cell.max_ns,
                    cell.connected_true
                ));
            }
            out.push_str("\n    }");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders aligned text tables, one per scenario.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== Latency tier (n={}, {} edges, load {:.0} ms, rev {}) ==\n",
            self.vertices, self.edges_loaded, self.load_millis, self.git_rev
        ));
        let mut names: Vec<&str> = self.cells.iter().map(|c| c.scenario.as_str()).collect();
        names.dedup();
        for name in names {
            out.push_str(&format!("\n-- {name} --\n"));
            out.push_str(&format!(
                "{:<22}{:>7}{:>12}{:>10}{:>10}{:>10}{:>10}\n",
                "engine", "hints", "mean ns", "p50", "p90", "p99", "p999"
            ));
            for cell in self.cells.iter().filter(|c| c.scenario == name) {
                out.push_str(&format!(
                    "{:<22}{:>7}{:>12.0}{:>10}{:>10}{:>10}{:>10}\n",
                    cell.engine,
                    if cell.hints { "on" } else { "off" },
                    cell.mean_ns,
                    cell.p50_ns,
                    cell.p90_ns,
                    cell.p99_ns,
                    cell.p999_ns
                ));
            }
        }
        if let Some(speedup) = self.read_storm_cold_speedup() {
            out.push_str(&format!(
                "\ncold-read speedup (read-storm, hints off, best width): {:.2}x \
                 (gate {:.1}x {})\n",
                speedup,
                GATE_SPEEDUP_FLOOR,
                if self.gate_applies() {
                    "binding"
                } else {
                    "not binding below full scale"
                }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_stream_is_one_connected_component() {
        let stream = SyntheticEdgeStream::new(500, 100, 9);
        let mut reader = EdgeBatchReader::new(stream, 64);
        let hdt = Hdt::new(500);
        let mut edges = 0;
        for batch in reader.by_ref() {
            for edge in batch.unwrap() {
                hdt.add_edge_locked(edge.u(), edge.v());
                edges += 1;
            }
        }
        assert_eq!(reader.num_vertices_seen(), 500);
        // 499 tree edges plus the surviving non-loop extras.
        assert!((499..=599).contains(&edges));
        for v in [1u32, 77, 499] {
            assert!(hdt.connected(0, v), "tree edge chain must connect {v}");
        }
    }

    #[test]
    fn latency_bench_runs_on_a_tiny_instance() {
        let config = LatencyBenchConfig {
            vertices: 4_096,
            extra_edges: 512,
            queries_per_cell: 2_000,
            batch: 64,
            widths: vec![1, 4],
            seed: 3,
            scale: 1.0,
        };
        let baseline = run_latency_bench(&config);
        assert_eq!(baseline.vertices, 4_096);
        assert!(baseline.edges_loaded >= 4_095);
        // 2 scenarios x 2 hint modes x (scalar + 2 widths) = 12 cells.
        assert_eq!(baseline.cells.len(), 12);
        // Agreement pass covered both hint modes and both widths per mix,
        // over the min(queries, AGREEMENT_PREFIX) prefix.
        assert_eq!(baseline.agreement_queries, 2 * 2 * 2 * 2_000);
        for cell in &baseline.cells {
            assert_eq!(cell.queries, 2_000, "{}", cell.engine);
            assert!(cell.mean_ns > 0.0, "{}", cell.engine);
            assert!(cell.p50_ns <= cell.p99_ns, "{}", cell.engine);
            assert!(cell.p99_ns <= cell.p999_ns, "{}", cell.engine);
            assert!(cell.p999_ns <= cell.max_ns, "{}", cell.engine);
        }
        // Every engine answered the same queries identically: the per-
        // scenario connected-true checksum is engine-invariant.
        for scenario in ["read-storm", "zipf-read"] {
            let counts: Vec<u64> = baseline
                .cells
                .iter()
                .filter(|c| c.scenario == scenario)
                .map(|c| c.connected_true)
                .collect();
            assert!(
                counts.windows(2).all(|w| w[0] == w[1]),
                "{scenario}: engines disagree on the connected count: {counts:?}"
            );
            // The tree spans every vertex, so all pairs are connected.
            assert_eq!(counts[0], 2_000, "{scenario}");
        }
        // The gate never binds at toy scale, but the quantity exists.
        assert!(!baseline.gate_applies());
        assert!(baseline.gate_passes());
        assert!(baseline.read_storm_cold_speedup().is_some());
        let json = baseline.to_json();
        assert!(json.contains("dc-bench/latency/v1"));
        assert!(json.contains("read_storm_cold_speedup"));
        assert!(json.contains("interleaved-w4+hints"));
        assert!(baseline.render_text().contains("cold-read speedup"));
    }

    #[test]
    fn gate_reports_missing_measurements_as_failure() {
        let empty = LatencyBaseline::default();
        assert!(empty.read_storm_cold_speedup().is_none());
        assert!(!empty.gate_passes(), "an unmeasured run must not pass");
    }
}
