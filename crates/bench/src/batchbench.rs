//! The batch-engine benchmark: bursty traffic, bulk loading and the
//! batch-size/compaction trade-off, emitted as `BENCH_batch.json`.
//!
//! The batch subsystem (`dc_batch`) opens a workload class the single-op
//! API cannot express — clients that naturally produce *bursts* of
//! operations (bulk loaders, queued mutations, flash-crowd traffic on a hot
//! edge set). This module measures it four ways:
//!
//! * **burst** — every thread ships bursts shaped like batched client
//!   traffic (a churn-heavy mutation block over a hot edge pool, then a
//!   read block) through `apply_batch`, versus the *same per-thread
//!   operation streams* issued one call at a time through every paper
//!   variant. The headline is the speedup over the best single-op variant,
//!   plus the compaction ratio (applied / submitted updates) showing how
//!   much work annihilation cancelled before it reached the tree.
//! * **bulk-load** — loading a generated graph through chunked
//!   `apply_batch` versus one-at-a-time `add_edge`.
//! * **batch-size sweep** — the same churn stream applied at several batch
//!   sizes: throughput and compaction ratio per size (bigger batches
//!   annihilate more).
//! * **adapter scenarios** — the engine's `DynamicConnectivity` adapter
//!   running the three *existing* bench scenarios unchanged through
//!   [`crate::throughput::run_throughput`], next to the paper's variant 9,
//!   proving drop-in compatibility.
//!
//! Every cell carries the lock-wait statistics from [`dc_sync::waitstats`]
//! and batch-amortized latency percentiles (p50/p99/p999) alongside
//! throughput.

use crate::report::{json_number, json_string};
use crate::scenario::{Scenario, Workload};
use crate::stats::LatencyHistogram;
use crate::throughput::run_throughput;
use dc_batch::{BatchConnectivity, BatchEngine, BatchOp};
use dc_graph::{generators, Edge};
use dc_sync::waitstats;
use dynconn::{DynamicConnectivity, Variant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Scenario parameters for the batch benchmark.
#[derive(Clone, Debug)]
pub struct BatchBenchConfig {
    /// Vertices of the hot graph the burst/churn traffic runs on.
    pub n: usize,
    /// Size of the hot edge pool the churny updates draw from.
    pub hot_edges: usize,
    /// Operations per burst (one `apply_batch` call).
    pub burst: usize,
    /// Bursts issued by each thread.
    pub bursts_per_thread: usize,
    /// Concurrent client threads (the acceptance point is 8).
    pub threads: usize,
    /// Percentage of queries inside a burst (the rest is add/remove churn).
    pub read_percent: u32,
    /// Edge count of the bulk-load graph.
    pub bulk_edges: usize,
    /// Chunk size used by the bulk-load scenario.
    pub bulk_chunk: usize,
    /// Batch sizes swept by the compaction scenario.
    pub batch_sizes: Vec<usize>,
    /// Operations per thread for the adapter-compatibility scenarios.
    pub scenario_ops_per_thread: usize,
    /// PRNG seed.
    pub seed: u64,
    /// Repetitions; best throughput per cell is kept.
    pub repeats: usize,
}

impl BatchBenchConfig {
    /// The tracked configuration (shrunk under `DC_BENCH_QUICK=1`,
    /// thread count overridable via `DC_BENCH_THREADS`).
    pub fn from_env() -> Self {
        let quick = std::env::var("DC_BENCH_QUICK")
            .map(|v| v != "0")
            .unwrap_or(false);
        let mut config = if quick {
            BatchBenchConfig {
                n: 512,
                hot_edges: 128,
                burst: 256,
                bursts_per_thread: 4,
                threads: 8,
                read_percent: 20,
                bulk_edges: 4_000,
                bulk_chunk: 1_024,
                batch_sizes: vec![16, 64, 256, 1024],
                scenario_ops_per_thread: 2_000,
                seed: 0xBA7C4,
                repeats: 2,
            }
        } else {
            BatchBenchConfig {
                n: 2_048,
                hot_edges: 256,
                burst: 2_048,
                bursts_per_thread: 6,
                threads: 8,
                read_percent: 20,
                bulk_edges: 40_000,
                bulk_chunk: 1_024,
                batch_sizes: vec![16, 64, 256, 1024, 4096],
                scenario_ops_per_thread: 10_000,
                seed: 0xBA7C4,
                repeats: 3,
            }
        };
        if let Ok(v) = std::env::var("DC_BENCH_THREADS") {
            if let Some(t) = v
                .split(',')
                .filter_map(|s| s.trim().parse::<usize>().ok())
                .max()
            {
                config.threads = t.max(1);
            }
        }
        config
    }

    /// Total operations of the burst scenario.
    pub fn burst_total_ops(&self) -> usize {
        self.threads * self.bursts_per_thread * self.burst
    }
}

/// One measured cell: a label plus throughput and lock-wait statistics.
#[derive(Clone, Debug)]
pub struct BatchCell {
    /// What was measured ("batch (apply_batch)", a variant name, ...).
    pub label: String,
    /// Operations per second.
    pub ops_per_sec: f64,
    /// Active time rate in percent.
    pub active_time_percent: f64,
    /// Total lock-wait time across threads, milliseconds.
    pub wait_ms: f64,
    /// Per-operation latency (batch-amortized for batched cells): median,
    /// nanoseconds.
    pub p50_nanos: u64,
    /// Per-operation latency: 99th percentile, nanoseconds.
    pub p99_nanos: u64,
    /// Per-operation latency: 99.9th percentile, nanoseconds.
    pub p999_nanos: u64,
}

/// One cell of the batch-size sweep.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Batch size.
    pub batch: usize,
    /// Operations per second.
    pub ops_per_sec: f64,
    /// Applied / submitted updates (< 1.0 means annihilation won).
    pub compaction_ratio: f64,
}

/// The full batch measurement, serialized as `BENCH_batch.json`.
#[derive(Clone, Debug, Default)]
pub struct BatchBaseline {
    /// Short git revision.
    pub git_rev: String,
    /// The configuration the numbers were measured at.
    pub config: Option<BatchBenchConfig>,
    /// Burst scenario: the batch engine plus every single-op variant.
    pub burst: Vec<BatchCell>,
    /// Burst batch throughput over the best single-op variant.
    pub burst_speedup_vs_best_single: f64,
    /// Applied / submitted updates of the burst batch run.
    pub burst_compaction_ratio: f64,
    /// Bulk-load scenario cells.
    pub bulk_load: Vec<BatchCell>,
    /// Bulk-load batch throughput over single-op loading.
    pub bulk_speedup: f64,
    /// Batch-size sweep over the churn stream.
    pub sweep: Vec<SweepCell>,
    /// The adapter running the existing scenarios, next to variant 9.
    pub adapter_scenarios: Vec<BatchCell>,
}

/// Measures `run` (which must execute `total_ops` operations across
/// `threads` threads and return the latency samples it took) with
/// lock-wait accounting enabled.
fn measure(total_ops: usize, threads: usize, run: impl FnOnce() -> LatencyHistogram) -> BatchCell {
    waitstats::reset();
    waitstats::set_enabled(true);
    let start = Instant::now();
    let latency = run();
    let elapsed = start.elapsed();
    waitstats::set_enabled(false);
    let total_thread_nanos = (elapsed.as_nanos() as u64).saturating_mul(threads as u64);
    BatchCell {
        label: String::new(),
        ops_per_sec: total_ops as f64 / elapsed.as_secs_f64().max(1e-9),
        active_time_percent: waitstats::active_time_rate_percent(total_thread_nanos),
        wait_ms: waitstats::total_wait_nanos() as f64 / 1e6,
        p50_nanos: latency.p50(),
        p99_nanos: latency.p99(),
        p999_nanos: latency.p999(),
    }
}

/// Records one timed batch of `n` operations into `hist`, amortized: the
/// per-op quotient carries the batch's full sample weight.
fn record_batch(hist: &mut LatencyHistogram, elapsed_nanos: u64, n: usize) {
    if n > 0 {
        hist.record_n(elapsed_nanos / n as u64, n as u64);
    }
}

/// Generates the hot edge pool: `hot_edges` distinct edges over `n`
/// vertices.
fn hot_pool(config: &BatchBenchConfig, rng: &mut StdRng) -> Vec<Edge> {
    let mut seen = std::collections::HashSet::new();
    let mut pool = Vec::with_capacity(config.hot_edges);
    while pool.len() < config.hot_edges {
        let u = rng.gen_range(0..config.n as u32);
        let v = rng.gen_range(0..config.n as u32);
        if u != v && seen.insert(Edge::new(u, v)) {
            pool.push(Edge::new(u, v));
        }
    }
    pool
}

/// Generates the per-thread burst streams. Each burst has the shape
/// batched clients naturally produce — a *mutation block* (churny
/// add/remove traffic over the hot pool) followed by a *read block*
/// verifying the result — which is exactly the shape the single-op API
/// cannot exploit: one `apply_batch` call compacts the whole mutation block
/// into its net intents and answers the read block from one consistent
/// state, while the single-op variants pay one synchronization round-trip
/// per operation of the very same stream.
fn burst_streams(config: &BatchBenchConfig) -> Vec<Vec<Vec<BatchOp>>> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let pool = hot_pool(config, &mut rng);
    let reads = (config.burst * config.read_percent as usize) / 100;
    let updates = config.burst - reads;
    (0..config.threads)
        .map(|t| {
            let mut trng = StdRng::seed_from_u64(config.seed ^ ((t as u64 + 1) * 0x9E37));
            (0..config.bursts_per_thread)
                .map(|_| {
                    let mut burst = Vec::with_capacity(config.burst);
                    for _ in 0..updates {
                        let e = pool[trng.gen_range(0..pool.len())];
                        if trng.gen_range(0..2) == 0 {
                            burst.push(BatchOp::Add(e.u(), e.v()));
                        } else {
                            burst.push(BatchOp::Remove(e.u(), e.v()));
                        }
                    }
                    for _ in 0..reads {
                        let u = trng.gen_range(0..config.n as u32);
                        let v = trng.gen_range(0..config.n as u32);
                        burst.push(BatchOp::Query(u, v));
                    }
                    burst
                })
                .collect()
        })
        .collect()
}

/// Runs each thread's bursts concurrently through `issue` (one call per
/// burst), with a start barrier like the throughput harness. Each burst is
/// timed and recorded amortized, so the merged histogram weighs every
/// operation once.
fn run_bursts(
    streams: &[Vec<Vec<BatchOp>>],
    issue: impl Fn(&[BatchOp]) + Sync,
) -> LatencyHistogram {
    let start_flag = AtomicBool::new(false);
    let mut latency = LatencyHistogram::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .map(|bursts| {
                let start_flag = &start_flag;
                let issue = &issue;
                scope.spawn(move || {
                    while !start_flag.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                    let mut hist = LatencyHistogram::new();
                    for burst in bursts {
                        let start = Instant::now();
                        issue(burst);
                        record_batch(&mut hist, start.elapsed().as_nanos() as u64, burst.len());
                    }
                    hist
                })
            })
            .collect();
        start_flag.store(true, Ordering::Release);
        for handle in handles {
            latency.merge(&handle.join().expect("burst worker panicked"));
        }
    });
    latency
}

fn single_op(dc: &dyn DynamicConnectivity, op: BatchOp) {
    match op {
        BatchOp::Add(u, v) => dc.add_edge(u, v),
        BatchOp::Remove(u, v) => dc.remove_edge(u, v),
        BatchOp::Query(u, v) => {
            std::hint::black_box(dc.connected(u, v));
        }
    }
}

/// Inserts or replaces the cell for `label`, keeping the best throughput.
/// Returns `true` if `cell` became the kept one (so by-products of the same
/// run — e.g. its compaction ratio — can be kept alongside).
fn keep_best(cells: &mut Vec<BatchCell>, mut cell: BatchCell, label: &str) -> bool {
    cell.label = label.to_string();
    match cells.iter_mut().find(|c| c.label == label) {
        Some(best) => {
            if cell.ops_per_sec > best.ops_per_sec {
                *best = cell;
                true
            } else {
                false
            }
        }
        None => {
            cells.push(cell);
            true
        }
    }
}

/// Runs every scenario `config.repeats` times, keeping the best throughput
/// per cell.
pub fn run_batch_bench(config: &BatchBenchConfig) -> BatchBaseline {
    dc_batch::register_variant();
    let mut baseline = BatchBaseline {
        git_rev: crate::ettbench::git_rev(),
        config: Some(config.clone()),
        ..Default::default()
    };
    let streams = burst_streams(config);
    let total_ops = config.burst_total_ops();

    for _ in 0..config.repeats.max(1) {
        // --- burst: the batch engine ---------------------------------------
        let engine = BatchEngine::new(config.n);
        let cell = measure(total_ops, config.threads, || {
            run_bursts(&streams, |burst| {
                std::hint::black_box(engine.apply_batch(burst));
            })
        });
        // The compaction ratio must come from the same run as the published
        // throughput (annihilation depends on the interleaving, so repeats
        // differ).
        if keep_best(&mut baseline.burst, cell, "batch (apply_batch)") {
            baseline.burst_compaction_ratio = engine.stats().compaction_ratio();
        }

        // --- burst: every single-op variant (incl. the adapter as 14) ------
        for variant in Variant::all_extended() {
            let dc = variant.build(config.n);
            let cell = measure(total_ops, config.threads, || {
                run_bursts(&streams, |burst| {
                    for &op in burst {
                        single_op(dc.as_ref(), op);
                    }
                })
            });
            keep_best(&mut baseline.burst, cell, variant.name());
        }

        // --- bulk load ------------------------------------------------------
        let bulk_graph = generators::erdos_renyi_nm(
            (config.bulk_edges / 2).max(16),
            config.bulk_edges,
            config.seed ^ 0xB0,
        );
        let engine = BatchEngine::new(bulk_graph.num_vertices());
        let cell = measure(bulk_graph.num_edges(), 1, || {
            let mut hist = LatencyHistogram::new();
            let mut chunk = Vec::with_capacity(config.bulk_chunk);
            for e in bulk_graph.edges() {
                chunk.push(BatchOp::Add(e.u(), e.v()));
                if chunk.len() == config.bulk_chunk {
                    let start = Instant::now();
                    engine.apply_batch(&chunk);
                    record_batch(&mut hist, start.elapsed().as_nanos() as u64, chunk.len());
                    chunk.clear();
                }
            }
            let start = Instant::now();
            engine.apply_batch(&chunk);
            record_batch(&mut hist, start.elapsed().as_nanos() as u64, chunk.len());
            hist
        });
        keep_best(&mut baseline.bulk_load, cell, "batch bulk-load");
        let dc = Variant::OurAlgorithm.build(bulk_graph.num_vertices());
        let cell = measure(bulk_graph.num_edges(), 1, || {
            let mut hist = LatencyHistogram::new();
            for (i, e) in bulk_graph.edges().iter().enumerate() {
                let start = (i % 16 == 0).then(Instant::now);
                dc.add_edge(e.u(), e.v());
                if let Some(start) = start {
                    hist.record(start.elapsed().as_nanos() as u64);
                }
            }
            hist
        });
        keep_best(&mut baseline.bulk_load, cell, "single-op load (variant 9)");

        // --- batch-size sweep (churn-heavy, single client) ------------------
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5EED);
        let pool = hot_pool(config, &mut rng);
        let churn_ops: Vec<BatchOp> = (0..config.burst * config.bursts_per_thread * 2)
            .map(|_| {
                let e = pool[rng.gen_range(0..pool.len())];
                if rng.gen_range(0..2) == 0 {
                    BatchOp::Add(e.u(), e.v())
                } else {
                    BatchOp::Remove(e.u(), e.v())
                }
            })
            .collect();
        for &batch in &config.batch_sizes {
            let engine = BatchEngine::new(config.n);
            let cell = measure(churn_ops.len(), 1, || {
                let mut hist = LatencyHistogram::new();
                for chunk in churn_ops.chunks(batch) {
                    let start = Instant::now();
                    engine.apply_batch(chunk);
                    record_batch(&mut hist, start.elapsed().as_nanos() as u64, chunk.len());
                }
                hist
            });
            let ratio = engine.stats().compaction_ratio();
            match baseline.sweep.iter_mut().find(|c| c.batch == batch) {
                Some(best) => {
                    if cell.ops_per_sec > best.ops_per_sec {
                        best.ops_per_sec = cell.ops_per_sec;
                        best.compaction_ratio = ratio;
                    }
                }
                None => baseline.sweep.push(SweepCell {
                    batch,
                    ops_per_sec: cell.ops_per_sec,
                    compaction_ratio: ratio,
                }),
            }
        }

        // --- the adapter on the existing scenarios --------------------------
        let graph = generators::erdos_renyi_nm(config.n, config.n * 3, config.seed ^ 0xADA);
        for scenario in [
            Scenario::RandomSubset { read_percent: 80 },
            Scenario::Incremental,
            Scenario::Decremental,
        ] {
            let workload = Workload::generate(
                &graph,
                scenario,
                config.threads,
                config.scenario_ops_per_thread,
                config.seed,
            );
            for (label_prefix, variant) in [
                ("batch adapter", Variant::BatchEngine),
                ("variant 9", Variant::OurAlgorithm),
            ] {
                let dc = variant.build(graph.num_vertices());
                let result = run_throughput(dc.as_ref(), &workload);
                let cell = BatchCell {
                    label: String::new(),
                    ops_per_sec: result.ops_per_ms * 1e3,
                    active_time_percent: result.active_time_percent,
                    wait_ms: result.wait_nanos as f64 / 1e6,
                    p50_nanos: result.latency.p50(),
                    p99_nanos: result.latency.p99(),
                    p999_nanos: result.latency.p999(),
                };
                keep_best(
                    &mut baseline.adapter_scenarios,
                    cell,
                    &format!("{} / {}", scenario.name(), label_prefix),
                );
            }
        }
    }

    let best_single = baseline
        .burst
        .iter()
        .filter(|c| c.label != "batch (apply_batch)")
        .map(|c| c.ops_per_sec)
        .fold(0.0f64, f64::max);
    let batch = baseline
        .burst
        .iter()
        .find(|c| c.label == "batch (apply_batch)")
        .map(|c| c.ops_per_sec)
        .unwrap_or(0.0);
    baseline.burst_speedup_vs_best_single = batch / best_single.max(1e-9);
    let bulk_single = baseline
        .bulk_load
        .iter()
        .find(|c| c.label == "single-op load (variant 9)")
        .map(|c| c.ops_per_sec)
        .unwrap_or(0.0);
    let bulk_batch = baseline
        .bulk_load
        .iter()
        .find(|c| c.label == "batch bulk-load")
        .map(|c| c.ops_per_sec)
        .unwrap_or(0.0);
    baseline.bulk_speedup = bulk_batch / bulk_single.max(1e-9);
    baseline
}

fn push_cells(out: &mut String, cells: &[BatchCell]) {
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {}: {{ \"ops_per_sec\": {}, \"active_time_percent\": {}, \"wait_ms\": {}, \
             \"p50_nanos\": {}, \"p99_nanos\": {}, \"p999_nanos\": {} }}",
            json_string(&cell.label),
            json_number(cell.ops_per_sec),
            json_number(cell.active_time_percent),
            json_number(cell.wait_ms),
            cell.p50_nanos,
            cell.p99_nanos,
            cell.p999_nanos
        ));
    }
}

impl BatchBaseline {
    /// Renders the measurement as pretty JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"dc-bench/batch/v2\",\n");
        out.push_str(&format!("  \"git_rev\": {},\n", json_string(&self.git_rev)));
        if let Some(config) = &self.config {
            out.push_str("  \"scenario\": {\n");
            out.push_str(&format!("    \"vertices\": {},\n", config.n));
            out.push_str(&format!("    \"hot_edges\": {},\n", config.hot_edges));
            out.push_str(&format!("    \"burst\": {},\n", config.burst));
            out.push_str(&format!(
                "    \"bursts_per_thread\": {},\n",
                config.bursts_per_thread
            ));
            out.push_str(&format!("    \"threads\": {},\n", config.threads));
            out.push_str(&format!("    \"read_percent\": {},\n", config.read_percent));
            out.push_str(&format!("    \"bulk_edges\": {},\n", config.bulk_edges));
            out.push_str(&format!("    \"repeats_best_of\": {}\n", config.repeats));
            out.push_str("  },\n");
        }
        out.push_str("  \"burst\": {");
        push_cells(&mut out, &self.burst);
        out.push_str("\n  },\n");
        out.push_str(&format!(
            "  \"burst_speedup_vs_best_single\": {},\n",
            json_number(self.burst_speedup_vs_best_single)
        ));
        out.push_str(&format!(
            "  \"burst_compaction_ratio\": {},\n",
            json_number(self.burst_compaction_ratio)
        ));
        out.push_str("  \"bulk_load\": {");
        push_cells(&mut out, &self.bulk_load);
        out.push_str("\n  },\n");
        out.push_str(&format!(
            "  \"bulk_speedup\": {},\n",
            json_number(self.bulk_speedup)
        ));
        out.push_str("  \"batch_size_sweep\": [");
        for (i, cell) in self.sweep.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{ \"batch\": {}, \"ops_per_sec\": {}, \"compaction_ratio\": {} }}",
                cell.batch,
                json_number(cell.ops_per_sec),
                json_number(cell.compaction_ratio)
            ));
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"adapter_scenarios\": {");
        push_cells(&mut out, &self.adapter_scenarios);
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders an aligned text table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let (threads, burst) = self
            .config
            .as_ref()
            .map(|c| (c.threads, c.burst))
            .unwrap_or((0, 0));
        out.push_str(&format!(
            "== Batch engine (burst = {burst} ops, {threads} threads, rev {}) ==\n",
            self.git_rev
        ));
        out.push_str(&format!(
            "{:<44}{:>14}{:>12}{:>12}\n",
            "burst scenario", "ops/s", "active %", "wait ms"
        ));
        let mut sorted: Vec<&BatchCell> = self.burst.iter().collect();
        sorted.sort_by(|a, b| b.ops_per_sec.total_cmp(&a.ops_per_sec));
        for cell in sorted {
            out.push_str(&format!(
                "{:<44}{:>14.0}{:>12.1}{:>12.2}\n",
                cell.label, cell.ops_per_sec, cell.active_time_percent, cell.wait_ms
            ));
        }
        out.push_str(&format!(
            "burst speedup vs best single-op: {:.2}x   compaction ratio: {:.3}\n\n",
            self.burst_speedup_vs_best_single, self.burst_compaction_ratio
        ));
        for cell in &self.bulk_load {
            out.push_str(&format!("{:<44}{:>14.0}\n", cell.label, cell.ops_per_sec));
        }
        out.push_str(&format!("bulk-load speedup: {:.2}x\n\n", self.bulk_speedup));
        out.push_str("batch-size sweep (churn stream):\n");
        for cell in &self.sweep {
            out.push_str(&format!(
                "  B={:<6} {:>12.0} ops/s   compaction {:.3}\n",
                cell.batch, cell.ops_per_sec, cell.compaction_ratio
            ));
        }
        out.push('\n');
        for cell in &self.adapter_scenarios {
            out.push_str(&format!(
                "{:<44}{:>14.0}{:>12.1}{:>12.2}\n",
                cell.label, cell.ops_per_sec, cell.active_time_percent, cell.wait_ms
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_bench_runs_on_a_tiny_instance() {
        let config = BatchBenchConfig {
            n: 64,
            hot_edges: 32,
            burst: 32,
            bursts_per_thread: 2,
            threads: 2,
            read_percent: 25,
            bulk_edges: 200,
            bulk_chunk: 64,
            batch_sizes: vec![8, 32],
            scenario_ops_per_thread: 200,
            seed: 7,
            repeats: 1,
        };
        let baseline = run_batch_bench(&config);
        // One batch cell plus the 13 paper variants plus the adapter (14).
        assert_eq!(baseline.burst.len(), 15);
        assert!(baseline.burst.iter().all(|c| c.ops_per_sec > 0.0));
        for cell in baseline.burst.iter().chain(&baseline.bulk_load) {
            assert!(cell.p50_nanos > 0, "{}", cell.label);
            assert!(cell.p50_nanos <= cell.p99_nanos && cell.p99_nanos <= cell.p999_nanos);
        }
        assert!(
            baseline.burst_compaction_ratio > 0.0 && baseline.burst_compaction_ratio < 1.0,
            "churn-heavy bursts must annihilate some updates (ratio {})",
            baseline.burst_compaction_ratio
        );
        assert_eq!(baseline.sweep.len(), 2);
        assert!(baseline
            .sweep
            .iter()
            .all(|c| c.compaction_ratio < 1.0 && c.ops_per_sec > 0.0));
        assert_eq!(baseline.adapter_scenarios.len(), 6);
        let json = baseline.to_json();
        assert!(json.contains("dc-bench/batch/v2"));
        assert!(json.contains("p999_nanos"));
        assert!(json.contains("burst_speedup_vs_best_single"));
        assert!(json.contains("batch_size_sweep"));
        assert!(baseline.render_text().contains("compaction"));
    }
}
