//! Benchmark harness for the SPAA '21 evaluation.
//!
//! The paper's evaluation (Section 5) measures operation throughput of the
//! thirteen algorithm variants under three workloads over eight small and
//! four large graphs, plus the "active time rate" (time not spent waiting for
//! locks) and workload statistics.  This crate provides:
//!
//! * the paper's three workload generators — random-subset, incremental and
//!   decremental scenarios ([`scenario`], a thin wrapper over the
//!   `dc_workloads` presets);
//! * the workload-subsystem benchmark — power-law + Zipf contention, the
//!   phased lifecycle, the temporal sliding window and trace replay across
//!   all fourteen variants, emitted as `BENCH_workloads.json`
//!   ([`workloadbench`]);
//! * the read-path tier — read-storm, zipf-read and mixed-churn scenarios
//!   with the root-hint cache on and off across all fourteen variants,
//!   emitted as `BENCH_reads.json` ([`readbench`]);
//! * the durability tier — WAL write-path overhead under each fsync policy
//!   and recovery time (checkpoint + tail replay vs full-trace replay)
//!   across a checkpoint-interval sweep, emitted as
//!   `BENCH_durability.json` ([`durabilitybench`]);
//! * the huge-graph latency tier — per-query latency distributions
//!   (p50/p90/p99/p999) of the scalar vs interleaved bulk-read engines on
//!   streamed 10M+-vertex graphs, emitted as `BENCH_latency.json`
//!   ([`latencybench`]);
//! * the backend-shootout tier — every `(forest backend, variant)`
//!   combination the registry supports under read-storm, churn and
//!   bulk-load, with per-operation p50/p99/p999 and an oracle agreement
//!   gate, emitted as `BENCH_backends.json` ([`backendsbench`]);
//! * the observability tier — the read-storm workload measured with
//!   `dc_obs` disabled, metrics-only and metrics+tracing against an
//!   untouched baseline, gating the disabled overhead, emitted as
//!   `BENCH_obs.json` ([`obsbench`]);
//! * the fault-harness tier — the batch-engine adapter workload with the
//!   `dc_faults` injection checks uninstalled, armed and disabled again
//!   (gating the disabled overhead), plus the recovery-from-poison
//!   latency of `DurableConnectivity::rebuild`, emitted as
//!   `BENCH_faults.json` ([`faultsbench`]);
//! * a multi-threaded throughput harness with warm-up, lock-wait accounting
//!   and ops/ms reporting ([`throughput`]);
//! * the statistics collector behind Tables 3 and 4 ([`stats`]);
//! * a small reporting layer that renders the per-figure result tables and
//!   JSON dumps ([`report`]);
//! * one binary per figure/table of the paper (see `src/bin/`), all driven by
//!   the same [`config::BenchConfig`] so they scale down gracefully on small
//!   machines.
//!
//! The machine-readable artifacts (`BENCH_adjacency.json`, `BENCH_ett.json`,
//! `BENCH_batch.json`, `BENCH_workloads.json`, `BENCH_reads.json`,
//! `BENCH_durability.json`, `BENCH_latency.json`, `BENCH_obs.json`,
//! `BENCH_backends.json`, `BENCH_faults.json`) are documented in
//! `docs/bench-schema.md`.

pub mod backendsbench;
pub mod batchbench;
pub mod config;
pub mod durabilitybench;
pub mod ettbench;
pub mod faultsbench;
pub mod latencybench;
pub mod obsbench;
pub mod readbench;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod stats;
pub mod throughput;
pub mod workloadbench;

pub use backendsbench::{run_backends_bench, BackendsBaseline, BackendsBenchConfig};
pub use batchbench::{run_batch_bench, BatchBaseline, BatchBenchConfig};
pub use config::BenchConfig;
pub use durabilitybench::{run_durability_bench, DurabilityBaseline, DurabilityBenchConfig};
pub use ettbench::{run_ett_bench, EttBaseline, EttBenchConfig};
pub use faultsbench::{run_faults_bench, FaultsBaseline, FaultsBenchConfig};
pub use latencybench::{run_latency_bench, LatencyBaseline, LatencyBenchConfig};
pub use obsbench::{run_obs_bench, ObsBaseline, ObsBenchConfig};
pub use readbench::{run_read_bench, ReadBaseline, ReadBenchConfig};
pub use report::FigureData;
pub use runner::{run_figure, Measure};
pub use scenario::{Operation, Scenario, Workload};
pub use throughput::{run_throughput, ThroughputResult};
pub use workloadbench::{run_workload_bench, WorkloadBaseline, WorkloadBenchConfig};
