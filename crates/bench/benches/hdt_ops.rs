//! Criterion micro-benchmarks for the HDT dynamic connectivity core:
//! single-threaded add/remove/query latency, including spanning-edge
//! removals that exercise the replacement search and level promotions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dc_graph::generators;
use dynconn::Hdt;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_add_remove_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("hdt_add_remove");
    for &n in &[1_000usize, 10_000] {
        let graph = generators::erdos_renyi_nm(n, n * 4, 5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let hdt = Hdt::new(n);
            for e in graph.edges() {
                hdt.add_edge_locked(e.u(), e.v());
            }
            let mut rng = StdRng::seed_from_u64(17);
            b.iter(|| {
                let e = graph.edge(rng.gen_range(0..graph.num_edges()));
                hdt.remove_edge_locked(e.u(), e.v());
                hdt.add_edge_locked(e.u(), e.v());
            })
        });
    }
    group.finish();
}

fn bench_connected_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("hdt_connected");
    let n = 10_000;
    let graph = generators::erdos_renyi_nm(n, n * 2, 6);
    let hdt = Hdt::new(n);
    for e in graph.edges() {
        hdt.add_edge_locked(e.u(), e.v());
    }
    let mut rng = StdRng::seed_from_u64(19);
    group.bench_function("lock_free", |b| {
        b.iter(|| {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            std::hint::black_box(hdt.connected(u, v))
        })
    });
    group.bench_function("root_comparison", |b| {
        b.iter(|| {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            std::hint::black_box(hdt.connected_locked(u, v))
        })
    });
    group.finish();
}

fn bench_spanning_removal(c: &mut Criterion) {
    // Dense graph: spanning removals must find replacements (promotions).
    let mut group = c.benchmark_group("hdt_spanning_removal_with_replacement");
    let n = 2_000;
    let graph = generators::erdos_renyi_nm(n, n * 8, 7);
    group.bench_function("dense_graph", |b| {
        let hdt = Hdt::new(n);
        for e in graph.edges() {
            hdt.add_edge_locked(e.u(), e.v());
        }
        let mut rng = StdRng::seed_from_u64(23);
        b.iter(|| {
            // Remove and re-add a random edge; roughly 1/8 of them are
            // spanning and trigger the replacement machinery.
            let e = graph.edge(rng.gen_range(0..graph.num_edges()));
            hdt.remove_edge_locked(e.u(), e.v());
            hdt.add_edge_locked(e.u(), e.v());
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_add_remove_cycle, bench_connected_query, bench_spanning_removal
}
criterion_main!(benches);
