//! Criterion micro-benchmarks for the HDT dynamic connectivity core:
//! single-threaded add/remove/query latency, including spanning-edge
//! removals that exercise the replacement search and level promotions,
//! plus before/after benchmarks of the adjacency layer itself (the legacy
//! per-slot `ConcurrentMultiSet` grid vs the flat `AdjacencyStore`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dc_graph::generators;
use dc_sync::{AdjacencyStore, ConcurrentMultiSet};
use dynconn::Hdt;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::ControlFlow;

fn bench_add_remove_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("hdt_add_remove");
    for &n in &[1_000usize, 10_000] {
        let graph = generators::erdos_renyi_nm(n, n * 4, 5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let hdt = Hdt::new(n);
            for e in graph.edges() {
                hdt.add_edge_locked(e.u(), e.v());
            }
            let mut rng = StdRng::seed_from_u64(17);
            b.iter(|| {
                let e = graph.edge(rng.gen_range(0..graph.num_edges()));
                hdt.remove_edge_locked(e.u(), e.v());
                hdt.add_edge_locked(e.u(), e.v());
            })
        });
    }
    group.finish();
}

fn bench_connected_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("hdt_connected");
    let n = 10_000;
    let graph = generators::erdos_renyi_nm(n, n * 2, 6);
    let hdt = Hdt::new(n);
    for e in graph.edges() {
        hdt.add_edge_locked(e.u(), e.v());
    }
    let mut rng = StdRng::seed_from_u64(19);
    group.bench_function("lock_free", |b| {
        b.iter(|| {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            std::hint::black_box(hdt.connected(u, v))
        })
    });
    group.bench_function("root_comparison", |b| {
        b.iter(|| {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            std::hint::black_box(hdt.connected_locked(u, v))
        })
    });
    group.finish();
}

fn bench_spanning_removal(c: &mut Criterion) {
    // Dense graph: spanning removals must find replacements (promotions).
    let mut group = c.benchmark_group("hdt_spanning_removal_with_replacement");
    let n = 2_000;
    let graph = generators::erdos_renyi_nm(n, n * 8, 7);
    group.bench_function("dense_graph", |b| {
        let hdt = Hdt::new(n);
        for e in graph.edges() {
            hdt.add_edge_locked(e.u(), e.v());
        }
        let mut rng = StdRng::seed_from_u64(23);
        b.iter(|| {
            // Remove and re-add a random edge; roughly 1/8 of them are
            // spanning and trigger the replacement machinery.
            let e = graph.edge(rng.gen_range(0..graph.num_edges()));
            hdt.remove_edge_locked(e.u(), e.v());
            hdt.add_edge_locked(e.u(), e.v());
        })
    });
    group.finish();
}

/// The seed's adjacency layout: one eagerly-allocated multiset per
/// `(level, vertex)` pair. Reconstructed here so the layer the tentpole
/// replaced stays measurable side by side.
struct LegacyAdjacency {
    slots: Vec<Vec<ConcurrentMultiSet<u64>>>,
}

impl LegacyAdjacency {
    fn new(levels: usize, n: usize) -> Self {
        LegacyAdjacency {
            slots: (0..levels)
                .map(|_| (0..n).map(|_| ConcurrentMultiSet::new()).collect())
                .collect(),
        }
    }
}

fn bench_adjacency_construction(c: &mut Criterion) {
    // The cost Hdt::new pays per adjacency grid: the legacy layout
    // allocates levels*n hashmaps, the flat store allocates twice.
    let mut group = c.benchmark_group("adjacency_construction");
    group.sample_size(10);
    for &n in &[10_000usize, 100_000] {
        let levels = (n as f64).log2().floor() as usize + 2;
        group.bench_with_input(BenchmarkId::new("legacy_multiset_grid", n), &n, |b, _| {
            b.iter(|| LegacyAdjacency::new(levels, n))
        });
        group.bench_with_input(BenchmarkId::new("flat_store", n), &n, |b, _| {
            b.iter(|| AdjacencyStore::<u64>::new(levels, n))
        });
    }
    group.finish();
}

fn bench_adjacency_churn(c: &mut Criterion) {
    // The write path of add_/remove_nonspanning_info: add and remove edges
    // on random slots (inline-representation regime, 0-4 edges per slot).
    let mut group = c.benchmark_group("adjacency_churn");
    let n = 10_000usize;
    let levels = 16;
    let legacy = LegacyAdjacency::new(levels, n);
    let store: AdjacencyStore<u64> = AdjacencyStore::new(levels, n);
    let mut rng = StdRng::seed_from_u64(29);
    group.bench_function("legacy_multiset_grid", |b| {
        b.iter(|| {
            let level = rng.gen_range(0..levels);
            let vertex = rng.gen_range(0..n);
            let edge = rng.gen_range(0..1_000_000u64);
            legacy.slots[level][vertex].add(edge);
            legacy.slots[level][vertex].remove(&edge)
        })
    });
    group.bench_function("flat_store", |b| {
        b.iter(|| {
            let level = rng.gen_range(0..levels);
            let vertex = rng.gen_range(0..n) as u32;
            let edge = rng.gen_range(0..1_000_000u64);
            store.add(level, vertex, edge);
            store.remove(level, vertex, &edge)
        })
    });
    group.finish();
}

fn bench_adjacency_scan(c: &mut Criterion) {
    // The read path of the replacement search: visit every edge of a slot.
    // The legacy layout clones a snapshot Vec per visit; the flat store
    // streams through a stack buffer.
    let mut group = c.benchmark_group("adjacency_scan_visit");
    let n = 4_096usize;
    for &degree in &[3usize, 24] {
        let legacy = LegacyAdjacency::new(1, n);
        let store: AdjacencyStore<u64> = AdjacencyStore::new(1, n);
        for v in 0..n {
            for d in 0..degree {
                legacy.slots[0][v].add((v * 31 + d) as u64);
                store.add(0, v as u32, (v * 31 + d) as u64);
            }
        }
        let mut rng = StdRng::seed_from_u64(31);
        group.bench_with_input(
            BenchmarkId::new("legacy_snapshot_vec", degree),
            &degree,
            |b, _| {
                b.iter(|| {
                    let v = rng.gen_range(0..n);
                    let mut sum = 0u64;
                    for edge in legacy.slots[0][v].snapshot() {
                        sum = sum.wrapping_add(edge);
                    }
                    sum
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("flat_store_visitor", degree),
            &degree,
            |b, _| {
                b.iter(|| {
                    let v = rng.gen_range(0..n) as u32;
                    let mut sum = 0u64;
                    let _ = store.for_each_edge(0, v, |edge| {
                        sum = sum.wrapping_add(edge);
                        ControlFlow::Continue(())
                    });
                    sum
                })
            },
        );
    }
    group.finish();
}

fn bench_hdt_construction(c: &mut Criterion) {
    // End-to-end effect on Hdt::new: lazy adjacency plus lazy upper forests.
    let mut group = c.benchmark_group("hdt_new");
    group.sample_size(10);
    for &n in &[10_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| Hdt::new(n))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_add_remove_cycle, bench_connected_query, bench_spanning_removal,
        bench_adjacency_construction, bench_adjacency_churn, bench_adjacency_scan,
        bench_hdt_construction
}
criterion_main!(benches);
