//! Criterion comparison of the algorithm variants on a scaled-down random
//! workload (the same shape as Figures 5/6, sized so `cargo bench` finishes
//! quickly; the full sweeps live in the `figure*` binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dc_bench::{run_throughput, Scenario, Workload};
use dc_graph::generators;
use dynconn::Variant;

fn bench_variants_random_scenario(c: &mut Criterion) {
    let n = 2_000;
    let graph = generators::preferential_attachment(n, 8, 3);
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .max(2);
    let variants = [
        Variant::CoarseGrained,
        Variant::CoarseNonBlockingReads,
        Variant::FineNonBlockingReads,
        Variant::OurAlgorithm,
        Variant::OurAlgorithmCoarse,
        Variant::FlatCombiningNonBlockingReads,
    ];
    for read_percent in [80u32, 99u32] {
        let mut group = c.benchmark_group(format!("variants_random_{read_percent}pct_reads"));
        group.sample_size(10);
        let workload = Workload::generate(
            &graph,
            Scenario::RandomSubset { read_percent },
            threads,
            2_000,
            11,
        );
        for variant in variants {
            group.bench_with_input(
                BenchmarkId::from_parameter(variant.name()),
                &variant,
                |b, &variant| {
                    b.iter(|| {
                        let structure = variant.build(n);
                        std::hint::black_box(run_throughput(structure.as_ref(), &workload))
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_variants_random_scenario
}
criterion_main!(benches);
