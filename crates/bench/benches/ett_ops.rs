//! Criterion micro-benchmarks for the single-writer Euler Tour Tree:
//! link/cut restructuring cost and the lock-free `connected` query, the
//! building blocks whose `O(log N)` behaviour the higher-level results rest
//! on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dc_ett::EulerForest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_random_forest(n: usize, seed: u64) -> (EulerForest, Vec<(u32, u32)>) {
    let forest = EulerForest::with_seed(n, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for v in 1..n as u32 {
        let parent = rng.gen_range(0..v);
        forest.link(parent, v);
        edges.push((parent, v));
    }
    (forest, edges)
}

fn bench_connected(c: &mut Criterion) {
    let mut group = c.benchmark_group("ett_connected");
    for &n in &[1_000usize, 10_000, 100_000] {
        let (forest, _) = build_random_forest(n, 42);
        let mut rng = StdRng::seed_from_u64(7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let u = rng.gen_range(0..n as u32);
                let v = rng.gen_range(0..n as u32);
                std::hint::black_box(forest.connected(u, v))
            })
        });
    }
    group.finish();
}

fn bench_link_cut(c: &mut Criterion) {
    let mut group = c.benchmark_group("ett_link_cut");
    for &n in &[1_000usize, 10_000] {
        let (forest, edges) = build_random_forest(n, 1);
        let mut rng = StdRng::seed_from_u64(11);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                // Cut a random spanning edge and immediately re-link it: one
                // full split + merge per iteration.
                let (u, v) = edges[rng.gen_range(0..edges.len())];
                forest.cut(u, v);
                forest.link(u, v);
            })
        });
    }
    group.finish();
}

fn bench_prepare_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("ett_prepared_cut");
    let n = 10_000;
    let (forest, edges) = build_random_forest(n, 3);
    let mut rng = StdRng::seed_from_u64(13);
    group.bench_function("prepare_then_relink", |b| {
        b.iter(|| {
            let (u, v) = edges[rng.gen_range(0..edges.len())];
            let _prepared = forest.prepare_cut(u, v);
            // Simulate "replacement found": relink the same edge.
            forest.link(u, v);
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_connected, bench_link_cut, bench_prepare_commit
}
criterion_main!(benches);
