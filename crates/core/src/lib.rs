//! Concurrent dynamic connectivity.
//!
//! This crate is the heart of the reproduction of *"A Scalable Concurrent
//! Algorithm for Dynamic Connectivity"* (Fedorov, Koval, Alistarh —
//! SPAA '21).  It provides:
//!
//! * the [`DynamicConnectivity`] trait — `add_edge` / `remove_edge` /
//!   `connected` over a fixed vertex set, callable from any number of
//!   threads;
//! * the Holm–de Lichtenberg–Thorup core ([`hdt::Hdt`]) built on
//!   single-writer concurrent Euler Tour Trees, with the level structure,
//!   replacement search and sampling heuristic of the sequential algorithm;
//! * all thirteen algorithm combinations evaluated in the paper
//!   ([`variants::Variant`]), from coarse-grained locking to the full
//!   algorithm with fine-grained per-component locks, non-blocking reads and
//!   lock-free non-spanning edge updates;
//! * baselines and oracles used by the tests and the benchmark harness
//!   ([`baseline`]).
//!
//! # Quick start
//!
//! ```
//! use dynconn::{DynamicConnectivity, Variant};
//!
//! // Build the paper's full algorithm (variant 9) over 100 vertices.
//! let dc = Variant::OurAlgorithm.build(100);
//! dc.add_edge(1, 2);
//! dc.add_edge(2, 3);
//! assert!(dc.connected(1, 3));
//! dc.remove_edge(2, 3);
//! assert!(!dc.connected(1, 3));
//! ```

pub mod api;
pub mod baseline;
pub mod combining;
pub mod hdt;
pub mod locking;
pub mod nonblocking;
pub mod state;
pub mod variants;

pub use api::{
    sequential_apply_batch, BatchConnectivity, BatchOp, DynamicConnectivity, QueryResult,
};
pub use baseline::{RecomputeOracle, UnionFind};
pub use dc_ett::ArenaExhausted;
pub use hdt::{Hdt, StatsSnapshot};
pub use state::{EdgeState, Status};
pub use variants::{
    batch_builder_registered, batch_builder_registered_for, register_batch_builder,
    register_batch_builder_lct, ForestBackend, Variant,
};
