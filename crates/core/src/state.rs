//! Edge status state machine (paper Section 4.4 and Appendix C).
//!
//! Every edge known to the structure has a [`EdgeState`] stored in a
//! concurrent map keyed by the normalized edge: its [`Status`] plus the level
//! it currently occupies in the Holm–de Lichtenberg–Thorup level structure.
//! The lock-free non-spanning-edge protocol advances edges through the state
//! machine with compare-and-swap operations on these values; a random tag is
//! embedded in every state so that re-inserting an edge never produces a
//! value equal to one observed before removal (the ABA guard the paper
//! obtains by pairing `INITIAL` with random bits).

use std::sync::atomic::{AtomicU64, Ordering};

/// The status part of an edge state (paper Figures 4 and 13).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Status {
    /// Freshly announced by an `add_edge`; not yet part of the structure.
    Initial,
    /// In the graph but not in the spanning forest; removal is non-blocking.
    NonSpanning,
    /// In the spanning forest; updates must run under component locks.
    Spanning,
    /// Being inserted into the spanning forest by some thread right now.
    InProgress,
}

/// Status + level + ABA tag of an edge. The `Removed` status of the paper is
/// represented by absence from the state map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeState {
    /// Current status.
    pub status: Status,
    /// Level of the edge in the HDT level structure (`0..=log2 n`).
    pub level: u8,
    /// Random tag distinguishing distinct insertions of the same edge.
    pub tag: u64,
}

static TAG_COUNTER: AtomicU64 = AtomicU64::new(0x9E37_79B9);

fn fresh_tag() -> u64 {
    // SplitMix64 over a global counter: unique enough for ABA protection and
    // free of thread-local RNG setup cost on the hot path.
    let x = TAG_COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl EdgeState {
    /// A fresh `Initial` state with a new tag.
    pub fn initial() -> Self {
        EdgeState {
            status: Status::Initial,
            level: 0,
            tag: fresh_tag(),
        }
    }

    /// Derives a new state with the given status and level, keeping the tag.
    pub fn with(self, status: Status, level: u8) -> Self {
        EdgeState {
            status,
            level,
            tag: self.tag,
        }
    }

    /// Convenience constructor for a state with an explicit status/level and
    /// a fresh tag.
    pub fn new(status: Status, level: u8) -> Self {
        EdgeState {
            status,
            level,
            tag: fresh_tag(),
        }
    }

    /// `true` if the edge is currently a spanning-forest edge or about to
    /// become one, which means its removal must take locks.
    pub fn requires_locked_removal(&self) -> bool {
        matches!(self.status, Status::Spanning | Status::InProgress)
    }
}

/// Marker describing an in-flight spanning-edge removal, published in a side
/// table keyed by the component's level-0 root while the removal holds the
/// component lock.
///
/// A concurrent non-blocking `add_edge` that observes this marker for the
/// component of its endpoints falls back to the blocking path, which closes
/// the race of Theorem 4.1: either the removal's replacement scan sees the
/// edge's already-published adjacency information (and helps complete the
/// addition, possibly using the edge as the replacement), or the addition
/// observes the marker and waits for the removal to finish.
#[derive(Debug, PartialEq, Eq)]
pub struct RemovalOp {
    /// The spanning edge being removed.
    pub edge: (u32, u32),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_states_have_distinct_tags() {
        let a = EdgeState::initial();
        let b = EdgeState::initial();
        assert_eq!(a.status, Status::Initial);
        assert_ne!(a.tag, b.tag, "ABA tags must differ between insertions");
        assert_ne!(a, b);
    }

    #[test]
    fn with_preserves_tag() {
        let a = EdgeState::initial();
        let b = a.with(Status::NonSpanning, 3);
        assert_eq!(b.tag, a.tag);
        assert_eq!(b.status, Status::NonSpanning);
        assert_eq!(b.level, 3);
        assert_ne!(a, b);
    }

    #[test]
    fn locked_removal_classification() {
        assert!(EdgeState::new(Status::Spanning, 0).requires_locked_removal());
        assert!(EdgeState::new(Status::InProgress, 0).requires_locked_removal());
        assert!(!EdgeState::new(Status::NonSpanning, 2).requires_locked_removal());
        assert!(!EdgeState::new(Status::Initial, 0).requires_locked_removal());
    }
}
