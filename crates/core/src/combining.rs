//! Combining-based baselines: parallel combining (variant 12) and flat
//! combining with non-blocking reads (variant 13).
//!
//! Both baselines funnel updates through a single combiner thread operating
//! on the sequential HDT structure.  Variant 12 additionally lets waiting
//! reader threads execute their own `connected` queries in parallel while the
//! combiner pauses (Aksenov et al.'s *parallel combining*), whereas variant
//! 13 answers queries through the single-writer ETT's lock-free protocol and
//! only routes updates through the combiner — the strongest combining
//! baseline in the paper's plots.

use crate::api::DynamicConnectivity;
use crate::hdt::Hdt;
use dc_ett::{DynamicForest, EulerForest};
use dc_sync::{CombiningExecutor, CombiningMode, CombiningTarget};
use std::sync::Arc;

/// Operations shipped to the combiner.
#[derive(Debug, Clone, Copy)]
pub enum CombinedOp {
    /// Add the edge `(u, v)`.
    Add(u32, u32),
    /// Remove the edge `(u, v)`.
    Remove(u32, u32),
    /// Connectivity query.
    Connected(u32, u32),
}

/// Results returned by the combiner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombinedRes {
    /// An update completed.
    Done,
    /// The answer of a connectivity query.
    Answer(bool),
}

/// The sequential structure driven by the combining executor.
pub struct HdtTarget<F: DynamicForest = EulerForest> {
    hdt: Arc<Hdt<F>>,
}

impl<F: DynamicForest> CombiningTarget for HdtTarget<F> {
    type Op = CombinedOp;
    type Res = CombinedRes;

    fn is_read(op: &CombinedOp) -> bool {
        matches!(op, CombinedOp::Connected(_, _))
    }

    fn apply_mut(&mut self, op: CombinedOp) -> CombinedRes {
        match op {
            CombinedOp::Add(u, v) => {
                self.hdt.add_edge_locked(u, v);
                CombinedRes::Done
            }
            CombinedOp::Remove(u, v) => {
                self.hdt.remove_edge_locked(u, v);
                CombinedRes::Done
            }
            CombinedOp::Connected(u, v) => CombinedRes::Answer(self.hdt.connected_locked(u, v)),
        }
    }

    fn apply_read(&self, op: CombinedOp) -> CombinedRes {
        match op {
            CombinedOp::Connected(u, v) => CombinedRes::Answer(self.hdt.connected_locked(u, v)),
            _ => unreachable!("only queries are read operations"),
        }
    }
}

/// Variants 12 and 13 of the evaluation.
pub struct CombiningVariant<F: DynamicForest = EulerForest> {
    hdt: Arc<Hdt<F>>,
    executor: CombiningExecutor<HdtTarget<F>>,
    lock_free_reads: bool,
}

impl CombiningVariant {
    /// Creates the variant over `n` vertices on the default (ETT) backend.
    ///
    /// `lock_free_reads` selects variant 13's behaviour (queries bypass the
    /// combiner and use the concurrent forest); otherwise queries are
    /// combined like every other operation (variant 12).
    pub fn new(n: usize, mode: CombiningMode, lock_free_reads: bool) -> Self {
        CombiningVariant::new_on(n, mode, lock_free_reads)
    }
}

impl<F: DynamicForest> CombiningVariant<F> {
    /// Creates the variant over `n` vertices on backend `F`.
    pub fn new_on(n: usize, mode: CombiningMode, lock_free_reads: bool) -> Self {
        let hdt = Arc::new(Hdt::new_on(n));
        let target = HdtTarget {
            hdt: Arc::clone(&hdt),
        };
        CombiningVariant {
            hdt,
            executor: CombiningExecutor::new(target, mode),
            lock_free_reads,
        }
    }

    /// Access to the underlying structure (tests and statistics).
    pub fn hdt(&self) -> &Hdt<F> {
        &self.hdt
    }
}

impl<F: DynamicForest> DynamicConnectivity for CombiningVariant<F> {
    fn add_edge(&self, u: u32, v: u32) {
        if u == v {
            return;
        }
        self.executor.execute(CombinedOp::Add(u, v));
    }

    fn remove_edge(&self, u: u32, v: u32) {
        if u == v {
            return;
        }
        self.executor.execute(CombinedOp::Remove(u, v));
    }

    fn connected(&self, u: u32, v: u32) -> bool {
        if u == v {
            return true;
        }
        if self.lock_free_reads {
            self.hdt.connected(u, v)
        } else {
            match self.executor.execute(CombinedOp::Connected(u, v)) {
                CombinedRes::Answer(b) => b,
                CombinedRes::Done => unreachable!("query returned an update result"),
            }
        }
    }

    fn num_vertices(&self) -> usize {
        self.hdt.num_vertices()
    }

    fn read_hint_counters(&self) -> Option<(u64, u64)> {
        let stats = self.hdt.stats();
        Some((stats.read_hint_hits, stats.read_hint_misses))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_combining_sequential_usage() {
        let dc = CombiningVariant::new(6, CombiningMode::ParallelReads, false);
        dc.add_edge(0, 1);
        dc.add_edge(1, 2);
        assert!(dc.connected(0, 2));
        dc.remove_edge(1, 2);
        assert!(!dc.connected(0, 2));
        dc.hdt().validate();
    }

    #[test]
    fn flat_combining_with_lock_free_reads() {
        let dc = CombiningVariant::new(6, CombiningMode::FlatCombining, true);
        dc.add_edge(0, 1);
        dc.add_edge(1, 2);
        dc.add_edge(0, 2);
        dc.remove_edge(0, 1);
        assert!(
            dc.connected(0, 1),
            "replacement must keep the cycle connected"
        );
        dc.hdt().validate();
    }

    #[test]
    fn combined_updates_from_multiple_threads() {
        use std::sync::Arc;
        let dc = Arc::new(CombiningVariant::new(
            64,
            CombiningMode::ParallelReads,
            false,
        ));
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let dc = Arc::clone(&dc);
                s.spawn(move || {
                    // Each thread builds its own path of 16 vertices.
                    let base = t * 16;
                    for i in 0..15 {
                        dc.add_edge(base + i, base + i + 1);
                    }
                    assert!(dc.connected(base, base + 15));
                });
            }
        });
        // Paths of different threads stay disconnected.
        assert!(!dc.connected(0, 63));
        assert!(dc.connected(16, 31));
        dc.hdt().validate();
    }
}
