//! The public dynamic connectivity interface shared by every algorithm
//! variant.

/// A concurrent, linearizable dynamic connectivity structure over a fixed
/// vertex set `0..n` (paper Section 1):
///
/// * [`DynamicConnectivity::add_edge`] inserts an undirected edge,
/// * [`DynamicConnectivity::remove_edge`] deletes it,
/// * [`DynamicConnectivity::connected`] answers whether two vertices are in
///   the same connected component.
///
/// All methods take `&self` and may be called concurrently from any number
/// of threads; each implementation provides its own synchronization (that is
/// exactly what distinguishes the paper's thirteen evaluated variants).
pub trait DynamicConnectivity: Send + Sync {
    /// Adds the undirected edge `(u, v)`. Adding an edge that is already
    /// present (or a self-loop) is a no-op.
    fn add_edge(&self, u: u32, v: u32);

    /// Removes the undirected edge `(u, v)`. Removing an absent edge is a
    /// no-op.
    fn remove_edge(&self, u: u32, v: u32);

    /// Returns `true` if `u` and `v` are currently in the same connected
    /// component.
    fn connected(&self, u: u32, v: u32) -> bool;

    /// Number of vertices of the underlying graph.
    fn num_vertices(&self) -> usize;

    /// Read-path root-hint cache counters as `(hits, misses)`, if this
    /// implementation exposes them (see `dc_ett::hints`). `None` means the
    /// variant has no hint-backed read path to report on; the benchmark
    /// harness uses this to attribute hit rates per variant without
    /// reaching through the trait object.
    fn read_hint_counters(&self) -> Option<(u64, u64)> {
        None
    }
}

/// One operation of a batch submitted through [`BatchConnectivity`].
///
/// The same three operations as [`DynamicConnectivity`], reified as data so
/// a whole burst can be shipped at once, deduplicated and annihilated before
/// it ever touches the tree (the `dc_batch` engine).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BatchOp {
    /// `add_edge(u, v)`.
    Add(u32, u32),
    /// `remove_edge(u, v)`.
    Remove(u32, u32),
    /// `connected(u, v)`.
    Query(u32, u32),
}

impl BatchOp {
    /// Returns `true` for the read-only `Query` operation.
    #[inline]
    pub fn is_query(&self) -> bool {
        matches!(self, BatchOp::Query(_, _))
    }

    /// The two vertices named by the operation.
    #[inline]
    pub fn endpoints(&self) -> (u32, u32) {
        match *self {
            BatchOp::Add(u, v) | BatchOp::Remove(u, v) | BatchOp::Query(u, v) => (u, v),
        }
    }
}

/// The answer to one [`BatchOp::Query`] of a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryResult {
    /// Index of the query in the submitted batch slice.
    pub op_index: usize,
    /// The queried pair.
    pub u: u32,
    /// The queried pair.
    pub v: u32,
    /// Whether `u` and `v` were connected at the query's position in the
    /// batch (i.e. with every earlier update of the batch applied and no
    /// later one).
    pub connected: bool,
}

/// Bulk submission: apply a whole batch of operations at once.
///
/// `apply_batch` is *sequentially equivalent*: the returned answers are
/// exactly those of executing `ops` one at a time, in slice order, on an
/// otherwise idle structure. Implementations exploit the slack inside that
/// contract — updates between two queries can be deduplicated, annihilated
/// and reordered freely (only the net edge set at each query point is
/// observable), and a run of consecutive queries can be answered in parallel
/// against one consistent state.
pub trait BatchConnectivity: DynamicConnectivity {
    /// Applies `ops` in order and returns the answers of all `Query`
    /// operations, in batch order (`op_index` links each answer back to its
    /// position in `ops`).
    fn apply_batch(&self, ops: &[BatchOp]) -> Vec<QueryResult>;
}

/// The reference semantics of [`BatchConnectivity::apply_batch`]: one
/// operation at a time through the single-op interface. Differential tests
/// compare every batched implementation against this.
pub fn sequential_apply_batch(
    structure: &dyn DynamicConnectivity,
    ops: &[BatchOp],
) -> Vec<QueryResult> {
    let mut results = Vec::new();
    for (op_index, op) in ops.iter().enumerate() {
        match *op {
            BatchOp::Add(u, v) => structure.add_edge(u, v),
            BatchOp::Remove(u, v) => structure.remove_edge(u, v),
            BatchOp::Query(u, v) => results.push(QueryResult {
                op_index,
                u,
                v,
                connected: structure.connected(u, v),
            }),
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_op_accessors() {
        assert!(BatchOp::Query(1, 2).is_query());
        assert!(!BatchOp::Add(1, 2).is_query());
        assert!(!BatchOp::Remove(1, 2).is_query());
        assert_eq!(BatchOp::Add(3, 4).endpoints(), (3, 4));
        assert_eq!(BatchOp::Remove(4, 3).endpoints(), (4, 3));
        assert_eq!(BatchOp::Query(0, 9).endpoints(), (0, 9));
    }

    #[test]
    fn sequential_apply_batch_matches_single_op_semantics() {
        let oracle = crate::baseline::RecomputeOracle::new(4);
        let ops = [
            BatchOp::Query(0, 1),
            BatchOp::Add(0, 1),
            BatchOp::Query(0, 1),
            BatchOp::Add(1, 2),
            BatchOp::Remove(0, 1),
            BatchOp::Query(0, 2),
            BatchOp::Query(1, 2),
        ];
        let results = sequential_apply_batch(&oracle, &ops);
        assert_eq!(
            results,
            vec![
                QueryResult {
                    op_index: 0,
                    u: 0,
                    v: 1,
                    connected: false
                },
                QueryResult {
                    op_index: 2,
                    u: 0,
                    v: 1,
                    connected: true
                },
                QueryResult {
                    op_index: 5,
                    u: 0,
                    v: 2,
                    connected: false
                },
                QueryResult {
                    op_index: 6,
                    u: 1,
                    v: 2,
                    connected: true
                },
            ]
        );
    }
}
