//! The public dynamic connectivity interface shared by every algorithm
//! variant.

/// A concurrent, linearizable dynamic connectivity structure over a fixed
/// vertex set `0..n` (paper Section 1):
///
/// * [`DynamicConnectivity::add_edge`] inserts an undirected edge,
/// * [`DynamicConnectivity::remove_edge`] deletes it,
/// * [`DynamicConnectivity::connected`] answers whether two vertices are in
///   the same connected component.
///
/// All methods take `&self` and may be called concurrently from any number
/// of threads; each implementation provides its own synchronization (that is
/// exactly what distinguishes the paper's thirteen evaluated variants).
pub trait DynamicConnectivity: Send + Sync {
    /// Adds the undirected edge `(u, v)`. Adding an edge that is already
    /// present (or a self-loop) is a no-op.
    fn add_edge(&self, u: u32, v: u32);

    /// Removes the undirected edge `(u, v)`. Removing an absent edge is a
    /// no-op.
    fn remove_edge(&self, u: u32, v: u32);

    /// Returns `true` if `u` and `v` are currently in the same connected
    /// component.
    fn connected(&self, u: u32, v: u32) -> bool;

    /// Number of vertices of the underlying graph.
    fn num_vertices(&self) -> usize;
}
