//! The Holm–de Lichtenberg–Thorup (HDT) dynamic connectivity core, built on
//! single-writer concurrent Euler Tour Trees.
//!
//! One [`Hdt`] instance holds the complete level structure of the classic
//! sequential algorithm (paper Section 4.1):
//!
//! * one Euler Tour Tree forest per level, `F_0 ⊇ F_1 ⊇ … ⊇ F_lmax`, where
//!   the level-0 forest is the one concurrent readers query;
//! * per-vertex, per-level multisets of adjacent non-spanning edges plus the
//!   corresponding subtree summary flags inside the ETT nodes;
//! * per-vertex, per-level sets of adjacent *exact-level* spanning edges,
//!   used to promote tree edges during a replacement search;
//! * the edge-state map (status + level + ABA tag) shared with the lock-free
//!   non-spanning-edge protocol;
//! * the published-removal side table used by that protocol's conflict
//!   handshake.
//!
//! All structural methods require the caller to be the unique writer for the
//! affected component(s) — a global lock (coarse-grained variants), the
//! per-component locks of [`Hdt::lock_components`] (fine-grained variants),
//! or the combining executor.  The only methods that are safe to call with
//! no synchronization at all are [`Hdt::connected`] and the read-only
//! accessors, plus the specific lock-free entry points used by the
//! non-blocking variants in [`crate::nonblocking`].
//!
//! # Adjacency layout and memory model
//!
//! The per-vertex, per-level adjacency multisets live in two flat
//! [`AdjacencyStore`]s (`nontree_adj` for non-spanning edges, `tree_adj`
//! for exact-level spanning edges), each indexed by `level * n + vertex`:
//!
//! * **Construction is O(1) allocations for adjacency.** The stores allocate
//!   only a page spine and a stripe array; the slot pages behind the
//!   `(level, vertex)` pairs materialize on first write, so adjacency memory
//!   scales with the number of *touched* pairs rather than with `n log n`.
//!   Level forests above 0 are equally lazy (`OnceLock` per level), so
//!   `Hdt::new(n)` allocates one forest of `n` vertices and nothing per
//!   upper level.
//! * **Slots are inline small sets.** Up to four distinct edges are stored
//!   in place (the common case: Table 3's per-vertex degrees are tiny);
//!   higher-degree slots spill into a private open-addressed table.
//! * **The hot paths never clone snapshots.** The replacement search
//!   ([`Hdt::remove_edge_locked`] → `scan_for_replacement`) streams each
//!   slot through the store's fixed chunk buffer; promotions drain slots
//!   with `pop`.  Iteration is best-effort under concurrent mutation exactly
//!   like the JVM concurrent sets the paper builds on: edges present
//!   throughout the scan are visited at least once (the store restarts a
//!   slot walk if the slot is reorganized mid-visit), concurrently
//!   added/removed edges may or may not appear, and the published-removal
//!   handshake in [`crate::nonblocking`] covers the added-but-missed case.
//! * **Synchronization.** Slot operations serialize on striped spinlocks
//!   inside the stores; visitor callbacks run with the stripe released.  The
//!   single-writer discipline above still governs which thread may perform
//!   structural mutations — the stores only make the *individual slot
//!   operations* atomic (which is what the lock-free non-spanning protocol
//!   needs for its `add_nonspanning_info` / `remove_nonspanning_info`
//!   publications).

use crate::state::{EdgeState, RemovalOp, Status};
use dc_ett::{DynamicForest, EulerForest, Mark, NodeRef};
use dc_graph::Edge;
use dc_sync::{AdjacencyStore, ShardedMap};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Default number of replacement candidates examined before the scan starts
/// promoting non-replacement edges to the next level (the sampling heuristic
/// of Iyer et al. that the paper enables for every algorithm).
pub const DEFAULT_SAMPLING_LIMIT: usize = 16;

/// Operation counters backing the Table 3 / Table 4 statistics.
#[derive(Debug, Default)]
pub struct OpStats {
    /// Total completed edge additions.
    pub additions: AtomicU64,
    /// Additions that did not change the spanning forest.
    pub non_spanning_additions: AtomicU64,
    /// Total completed edge removals.
    pub removals: AtomicU64,
    /// Removals of non-spanning edges.
    pub non_spanning_removals: AtomicU64,
    /// Spanning-edge removals for which a replacement edge was found.
    pub replacements_found: AtomicU64,
}

/// A point-in-time copy of [`OpStats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSnapshot {
    /// Total completed edge additions.
    pub additions: u64,
    /// Additions that did not change the spanning forest.
    pub non_spanning_additions: u64,
    /// Total completed edge removals.
    pub removals: u64,
    /// Removals of non-spanning edges.
    pub non_spanning_removals: u64,
    /// Spanning-edge removals that found a replacement.
    pub replacements_found: u64,
    /// Query endpoint resolutions answered purely from the level-0
    /// root-hint cache — no tree traversal at all (a two-endpoint query
    /// contributes two counts).
    pub read_hint_hits: u64,
    /// Query endpoint resolutions that fell back to a parent-pointer climb
    /// (cold or stale hints; with the cache disabled nothing is counted).
    pub read_hint_misses: u64,
}

impl StatsSnapshot {
    /// Percentage of additions that were non-spanning.
    pub fn non_spanning_addition_rate(&self) -> f64 {
        if self.additions == 0 {
            0.0
        } else {
            100.0 * self.non_spanning_additions as f64 / self.additions as f64
        }
    }

    /// Percentage of removals that were non-spanning.
    pub fn non_spanning_removal_rate(&self) -> f64 {
        if self.removals == 0 {
            0.0
        } else {
            100.0 * self.non_spanning_removals as f64 / self.removals as f64
        }
    }

    /// Percentage of hint-cache consultations that hit (avoided the climb).
    pub fn read_hint_hit_rate(&self) -> f64 {
        let total = self.read_hint_hits + self.read_hint_misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.read_hint_hits as f64 / total as f64
        }
    }
}

/// Handle to the component locks acquired by [`Hdt::lock_components`],
/// generic over the backend's representative handle (`R = F::Root`).
#[derive(Debug, Clone, Copy)]
pub struct LockedComponents<R = NodeRef> {
    roots: [R; 2],
    count: usize,
    shared: bool,
}

/// The HDT dynamic connectivity core; see the module documentation.
///
/// Generic over the per-level spanning-forest backend: any
/// [`DynamicForest`] works (the treap-ETT [`EulerForest`] is the default;
/// `dc_ett::LctForest` is the link-cut-tree alternative). The backend choice
/// constrains which *variants* may drive the structure — see
/// `Variant::supports_backend` and `DESIGN.md` §12.
pub struct Hdt<F: DynamicForest = EulerForest> {
    n: usize,
    /// Per-level spanning forests. Level 0 is materialized at construction
    /// (it answers every query); levels `>= 1` are only built when the first
    /// promotion reaches them, so `Hdt::new` is O(n) instead of O(n log n).
    levels: Vec<OnceLock<F>>,
    /// Adjacent non-spanning edges, slot `(level, vertex)`.
    nontree_adj: AdjacencyStore<Edge>,
    /// Adjacent spanning edges of exactly `level`, slot `(level, vertex)`.
    tree_adj: AdjacencyStore<Edge>,
    /// Status + level + tag per edge (absence = removed / never added).
    pub(crate) states: ShardedMap<Edge, EdgeState>,
    /// In-flight spanning-edge removals, keyed by the component's level-0
    /// root (the representative concurrent readers observe).
    pub(crate) removal_ops: ShardedMap<F::Root, Arc<RemovalOp>>,
    sampling_limit: usize,
    stats: OpStats,
}

impl Hdt {
    /// Creates an empty structure over `n` vertices on the default
    /// (Euler-tour-tree) backend.
    pub fn new(n: usize) -> Self {
        Self::with_sampling(n, DEFAULT_SAMPLING_LIMIT)
    }

    /// Creates an empty structure with an explicit sampling budget for the
    /// replacement search (0 disables the heuristic), on the default
    /// backend.
    pub fn with_sampling(n: usize, sampling_limit: usize) -> Self {
        Hdt::with_sampling_on(n, sampling_limit)
    }
}

impl<F: DynamicForest> Hdt<F> {
    /// Creates an empty structure over `n` vertices on backend `F`.
    pub fn new_on(n: usize) -> Self {
        Self::with_sampling_on(n, DEFAULT_SAMPLING_LIMIT)
    }

    /// Creates an empty structure on backend `F` with an explicit sampling
    /// budget for the replacement search (0 disables the heuristic).
    pub fn with_sampling_on(n: usize, sampling_limit: usize) -> Self {
        assert!(n >= 1, "the structure needs at least one vertex");
        let lmax = (n.max(2) as f64).log2().floor() as usize;
        let num_levels = lmax + 2; // levels 0..=lmax plus one spill level
        let levels: Vec<OnceLock<F>> = (0..num_levels).map(|_| OnceLock::new()).collect();
        // Queries read the level-0 forest with no synchronization, so it is
        // the one level built eagerly.
        if levels[0]
            .set(F::with_seed(n, Self::forest_seed(0)))
            .is_err()
        {
            unreachable!("level 0 initialized twice");
        }
        Hdt {
            n,
            levels,
            nontree_adj: AdjacencyStore::new(num_levels, n),
            tree_adj: AdjacencyStore::new(num_levels, n),
            states: ShardedMap::new(),
            removal_ops: ShardedMap::new(),
            sampling_limit,
            stats: OpStats::default(),
        }
    }

    #[inline]
    fn forest_seed(level: usize) -> u64 {
        0xDC0DE ^ (level as u64) << 32
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of levels in the level structure.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The level-`i` spanning forest (the level-0 forest is the one queries
    /// read). Forests above level 0 materialize on first access.
    pub fn forest(&self, level: usize) -> &F {
        self.levels[level].get_or_init(|| F::with_seed(self.n, Self::forest_seed(level)))
    }

    /// Number of level forests that have been materialized so far.
    pub fn materialized_forest_levels(&self) -> usize {
        self.levels.iter().filter(|l| l.get().is_some()).count()
    }

    /// The non-spanning adjacency store (tests and diagnostics).
    pub fn nontree_store(&self) -> &AdjacencyStore<Edge> {
        &self.nontree_adj
    }

    /// The exact-level spanning adjacency store (tests and diagnostics).
    pub fn tree_store(&self) -> &AdjacencyStore<Edge> {
        &self.tree_adj
    }

    /// Snapshot of the operation counters.
    pub fn stats(&self) -> StatsSnapshot {
        // Read-path hint counters live in the level-0 forest (the one that
        // answers every query).
        let (read_hint_hits, read_hint_misses) = self.forest(0).read_hint_stats();
        StatsSnapshot {
            additions: self.stats.additions.load(Ordering::Relaxed),
            non_spanning_additions: self.stats.non_spanning_additions.load(Ordering::Relaxed),
            removals: self.stats.removals.load(Ordering::Relaxed),
            non_spanning_removals: self.stats.non_spanning_removals.load(Ordering::Relaxed),
            replacements_found: self.stats.replacements_found.load(Ordering::Relaxed),
            read_hint_hits,
            read_hint_misses,
        }
    }

    /// Enables or disables the level-0 root-hint read fast path (strictly
    /// an accelerator; both settings are correct).
    pub fn set_read_hints(&self, enabled: bool) {
        self.forest(0).set_read_hints(enabled);
    }

    /// Whether the level-0 root-hint read fast path is enabled.
    pub fn read_hints_enabled(&self) -> bool {
        self.forest(0).read_hints_enabled()
    }

    /// Enables or disables the interleaved, software-prefetched bulk read
    /// engine behind [`Hdt::connected_many`] (strictly a latency
    /// optimization; both settings answer identically — disabled, bulk
    /// reads take the scalar memo path, the differential oracle).
    pub fn set_interleaved_reads(&self, enabled: bool) {
        self.forest(0).set_interleaved_reads(enabled);
    }

    /// Whether bulk reads go through the interleaved engine.
    pub fn interleaved_reads_enabled(&self) -> bool {
        self.forest(0).interleaved_reads_enabled()
    }

    /// Sets the interleaved engine's in-flight climb count (clamped to
    /// `1..=dc_ett::MAX_INTERLEAVE_WIDTH`; the default of 8 suits most
    /// hosts — see `DESIGN.md` §10).
    pub fn set_interleave_width(&self, width: usize) {
        self.forest(0).set_interleave_width(width);
    }

    /// The interleaved engine's in-flight climb count.
    pub fn interleave_width(&self) -> usize {
        self.forest(0).interleave_width()
    }

    // ----- queries -----------------------------------------------------------

    /// Lock-free linearizable connectivity query (paper Listing 1 applied to
    /// the level-0 forest). Safe to call from any thread at any time.
    pub fn connected(&self, u: u32, v: u32) -> bool {
        if u == v {
            return true;
        }
        self.forest(0).connected(u, v)
    }

    /// Connectivity query by plain root comparison; valid only while the
    /// caller holds locks covering both components.
    pub fn connected_locked(&self, u: u32, v: u32) -> bool {
        u == v || self.forest(0).same_tree_locked(u, v)
    }

    /// Size of the component of `u` (writer-side; requires the component to
    /// be quiescent or locked).
    pub fn component_size(&self, u: u32) -> usize {
        self.forest(0).component_size(u) as usize
    }

    /// Returns `true` if the edge is currently present in the graph.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        matches!(
            self.states.get(&Edge::new(u, v)),
            Some(st) if st.status != Status::Initial
        )
    }

    // ----- per-component locking (paper Listing 2) ---------------------------

    fn lock_components_inner(&self, u: u32, v: u32, shared: bool) -> LockedComponents<F::Root> {
        let forest = self.forest(0);
        loop {
            let u_root = forest.find_root_node(u);
            let v_root = forest.find_root_node(v);
            // Always acquire in the same global order to avoid deadlock.
            let (first, second) = if u_root <= v_root {
                (u_root, v_root)
            } else {
                (v_root, u_root)
            };
            let lock = |r: F::Root| {
                if shared {
                    forest.root_lock(r).read_lock()
                } else {
                    forest.root_lock(r).lock()
                }
            };
            let unlock = |r: F::Root| {
                if shared {
                    forest.root_lock(r).read_unlock()
                } else {
                    forest.root_lock(r).unlock()
                }
            };
            lock(first);
            if second != first {
                lock(second);
            }
            // Re-check that we locked the current representatives.
            let still_roots = forest.is_current_root(u_root) && forest.is_current_root(v_root);
            let still_current =
                forest.find_root_node(u) == u_root && forest.find_root_node(v) == v_root;
            if still_roots && still_current {
                let count = if second != first { 2 } else { 1 };
                return LockedComponents {
                    roots: [first, second],
                    count,
                    shared,
                };
            }
            unlock(first);
            if second != first {
                unlock(second);
            }
        }
    }

    /// Acquires the per-component locks for the components of `u` and `v`
    /// (one lock if they are in the same component), following the retry
    /// protocol of paper Listing 2.
    pub fn lock_components(&self, u: u32, v: u32) -> LockedComponents<F::Root> {
        self.lock_components_inner(u, v, false)
    }

    /// Shared-mode variant used by the fine-grained readers-writer algorithm
    /// for queries.
    pub fn lock_components_shared(&self, u: u32, v: u32) -> LockedComponents<F::Root> {
        self.lock_components_inner(u, v, true)
    }

    /// Releases locks acquired by [`Hdt::lock_components`] /
    /// [`Hdt::lock_components_shared`].
    pub fn unlock_components(&self, locked: LockedComponents<F::Root>) {
        let forest = self.forest(0);
        for i in 0..locked.count {
            let lock = forest.root_lock(locked.roots[i]);
            if locked.shared {
                lock.read_unlock();
            } else {
                lock.unlock();
            }
        }
    }

    /// Runs `f` with the components of `u` and `v` exclusively locked.
    pub fn with_components_locked<R>(&self, u: u32, v: u32, f: impl FnOnce() -> R) -> R {
        let locked = self.lock_components(u, v);
        let result = f();
        self.unlock_components(locked);
        result
    }

    // ----- structural operations (caller provides synchronization) ----------

    /// Adds edge `(u, v)`. Returns `false` if it was already present.
    ///
    /// The caller must hold synchronization covering both endpoints'
    /// components (a global lock or [`Hdt::lock_components`]).
    pub fn add_edge_locked(&self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        let edge = Edge::new(u, v);
        if self.has_edge(u, v) {
            return false;
        }
        self.stats.additions.fetch_add(1, Ordering::Relaxed);
        dc_obs::counter_add(dc_obs::Counter::HdtAdditions, 1);
        if self.connected_locked(u, v) {
            self.stats
                .non_spanning_additions
                .fetch_add(1, Ordering::Relaxed);
            dc_obs::counter_add(dc_obs::Counter::HdtNonSpanningAdditions, 1);
            self.add_nonspanning_info(0, edge);
            self.states
                .insert(edge, EdgeState::new(Status::NonSpanning, 0));
        } else {
            self.make_spanning(edge, 0);
            self.states
                .insert(edge, EdgeState::new(Status::Spanning, 0));
        }
        true
    }

    /// Fallible [`Hdt::add_edge_locked`]: a spanning insert that cannot get
    /// forest node storage — arena exhaustion, real or chaos-injected —
    /// returns `Err(ArenaExhausted)` with the structure untouched, instead
    /// of aborting the process. Non-spanning inserts allocate no forest
    /// nodes and cannot fail this way.
    ///
    /// Only the *add* path is fallible: an addition is the one operation a
    /// service can meaningfully reject at capacity. Removals (whose
    /// replacement searches may also link, via promotions) stay on the
    /// infallible path — failing a removal halfway would strand the level
    /// structure, so genuine exhaustion there is handled by the batch
    /// engine's unwind boundary and poison discipline (`DESIGN.md` §13).
    pub fn try_add_edge_locked(&self, u: u32, v: u32) -> Result<bool, dc_ett::ArenaExhausted> {
        if u == v {
            return Ok(false);
        }
        let edge = Edge::new(u, v);
        if self.has_edge(u, v) {
            return Ok(false);
        }
        if self.connected_locked(u, v) {
            self.stats.additions.fetch_add(1, Ordering::Relaxed);
            dc_obs::counter_add(dc_obs::Counter::HdtAdditions, 1);
            self.stats
                .non_spanning_additions
                .fetch_add(1, Ordering::Relaxed);
            dc_obs::counter_add(dc_obs::Counter::HdtNonSpanningAdditions, 1);
            self.add_nonspanning_info(0, edge);
            self.states
                .insert(edge, EdgeState::new(Status::NonSpanning, 0));
        } else {
            // The add path always links at level 0 only, so one fallible
            // link covers the whole operation: failure leaves no partial
            // multi-level state behind.
            self.try_make_spanning_level0(edge)?;
            self.stats.additions.fetch_add(1, Ordering::Relaxed);
            dc_obs::counter_add(dc_obs::Counter::HdtAdditions, 1);
            self.states
                .insert(edge, EdgeState::new(Status::Spanning, 0));
        }
        Ok(true)
    }

    /// Removes edge `(u, v)`. Returns `false` if it was not present.
    ///
    /// Same synchronization contract as [`Hdt::add_edge_locked`].
    pub fn remove_edge_locked(&self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        let edge = Edge::new(u, v);
        let state = match self.states.get(&edge) {
            Some(st) if st.status != Status::Initial => st,
            _ => return false,
        };
        self.stats.removals.fetch_add(1, Ordering::Relaxed);
        dc_obs::counter_add(dc_obs::Counter::HdtRemovals, 1);
        match state.status {
            Status::NonSpanning => {
                self.stats
                    .non_spanning_removals
                    .fetch_add(1, Ordering::Relaxed);
                dc_obs::counter_add(dc_obs::Counter::HdtNonSpanningRemovals, 1);
                self.remove_nonspanning_info(state.level as usize, edge);
                self.states.remove(&edge);
            }
            Status::Spanning | Status::InProgress => {
                self.remove_spanning_edge(edge, state.level as usize);
                self.states.remove(&edge);
            }
            Status::Initial => unreachable!(),
        }
        true
    }

    /// Publishes a removal marker for the component whose level-0 root is
    /// `root` (used by the lock-free protocol's conflict handshake).
    pub(crate) fn publish_removal(&self, root: F::Root, op: Arc<RemovalOp>) {
        self.removal_ops.insert(root, op);
    }

    /// Removes a previously published removal marker.
    pub(crate) fn unpublish_removal(&self, root: F::Root) {
        self.removal_ops.remove(&root);
    }

    /// Returns the removal marker currently published for `root`, if any.
    pub(crate) fn published_removal(&self, root: F::Root) -> Option<Arc<RemovalOp>> {
        self.removal_ops.get(&root)
    }

    /// Records a completed addition in the statistics counters (used by the
    /// non-blocking fast paths which bypass [`Hdt::add_edge_locked`]).
    pub(crate) fn record_addition(&self, non_spanning: bool) {
        self.stats.additions.fetch_add(1, Ordering::Relaxed);
        dc_obs::counter_add(dc_obs::Counter::HdtAdditions, 1);
        if non_spanning {
            self.stats
                .non_spanning_additions
                .fetch_add(1, Ordering::Relaxed);
            dc_obs::counter_add(dc_obs::Counter::HdtNonSpanningAdditions, 1);
        }
    }

    /// Records a completed removal in the statistics counters.
    pub(crate) fn record_removal(&self, non_spanning: bool) {
        self.stats.removals.fetch_add(1, Ordering::Relaxed);
        dc_obs::counter_add(dc_obs::Counter::HdtRemovals, 1);
        if non_spanning {
            self.stats
                .non_spanning_removals
                .fetch_add(1, Ordering::Relaxed);
            dc_obs::counter_add(dc_obs::Counter::HdtNonSpanningRemovals, 1);
        }
    }

    /// Completes an announced addition under the component locks: the
    /// blocking fallback of the non-blocking protocol (paper Listing 8,
    /// `blocking_add_edge`). `initial` is the `Initial` state the caller
    /// announced; if the stored state differs, someone else already finished
    /// the insertion and this call is a no-op.
    pub(crate) fn blocking_add_edge(&self, edge: Edge, initial: EdgeState) {
        let (u, v) = edge.endpoints();
        match self.states.get(&edge) {
            Some(st) if st == initial => {}
            _ => return,
        }
        if self.connected_locked(u, v) {
            // Non-spanning insertion; publish info before the state change so
            // a concurrent replacement search can always find the edge.
            self.add_nonspanning_info(0, edge);
            if self
                .states
                .compare_exchange(&edge, &initial, initial.with(Status::NonSpanning, 0))
                .is_ok()
            {
                self.record_addition(true);
            } else {
                self.remove_nonspanning_info(0, edge);
            }
        } else {
            self.states
                .insert(edge, initial.with(Status::InProgress, 0));
            self.make_spanning(edge, 0);
            self.states.insert(edge, initial.with(Status::Spanning, 0));
            self.record_addition(false);
        }
    }

    // ----- batch hooks (used by the `dc_batch` engine) -----------------------

    /// Applies a compacted batch of updates in one combined pass, under the
    /// caller's synchronization (same contract as [`Hdt::add_edge_locked`]).
    ///
    /// Additions are applied before removals on purpose: every edge the
    /// batch inserts is in place before any removal runs, so a removed
    /// spanning edge sees the densest graph the batch can offer — the
    /// replacement search is maximally likely to find a (cheap) replacement
    /// instead of committing a split that a later addition of the same batch
    /// would immediately undo. The final edge set is order-independent (the
    /// batch preprocessor only emits one net operation per edge), so this is
    /// purely a cost choice.
    ///
    /// Returns the number of updates that actually changed the edge set.
    pub fn apply_compacted_batch_locked(&self, adds: &[Edge], removes: &[Edge]) -> usize {
        let mut changed = 0;
        for e in adds {
            if self.add_edge_locked(e.u(), e.v()) {
                changed += 1;
            }
        }
        for e in removes {
            if self.remove_edge_locked(e.u(), e.v()) {
                changed += 1;
            }
        }
        changed
    }

    /// Fallible [`Hdt::apply_compacted_batch_locked`]: additions that the
    /// forest rejects for capacity ([`Hdt::try_add_edge_locked`]) are
    /// appended to `rejected` (and tallied on
    /// [`dc_obs::Counter::CapacityRejections`]) instead of aborting; every
    /// other update applies normally. Returns the number of updates that
    /// changed the edge set — rejected adds don't count, and the caller is
    /// expected to drop them from whatever it logs or acks downstream.
    pub fn try_apply_compacted_batch_locked(
        &self,
        adds: &[Edge],
        removes: &[Edge],
        rejected: &mut Vec<Edge>,
    ) -> usize {
        let mut changed = 0;
        for e in adds {
            match self.try_add_edge_locked(e.u(), e.v()) {
                Ok(true) => changed += 1,
                Ok(false) => {}
                Err(dc_ett::ArenaExhausted) => {
                    dc_obs::counter_add(dc_obs::Counter::CapacityRejections, 1);
                    rejected.push(*e);
                }
            }
        }
        for e in removes {
            if self.remove_edge_locked(e.u(), e.v()) {
                changed += 1;
            }
        }
        changed
    }

    /// Answers a run of connectivity queries with the lock-free read
    /// protocol, appending one answer per pair to `out`. Safe to call from
    /// any number of threads concurrently (the batch engine fans a query run
    /// out across threads, each answering a chunk against the same
    /// consistent post-update state).
    ///
    /// Unlike a loop over [`Hdt::connected`], the run resolves each
    /// *distinct* endpoint's root at most once (sorted endpoint memo) and
    /// revalidates it per pair with a few version loads — repeated roots
    /// never re-climb within one call, even when the hint cache is cold or
    /// disabled. Each answer is still individually linearizable.
    ///
    /// By default the run goes through the interleaved, software-prefetched
    /// read engine (`DESIGN.md` §10), which overlaps the DRAM stalls of
    /// independent climbs; [`Hdt::set_interleaved_reads`]`(false)` routes
    /// it through the scalar memo path instead.
    pub fn connected_many(&self, pairs: &[(u32, u32)], out: &mut Vec<bool>) {
        self.forest(0).connected_many_into(pairs, out);
    }

    /// [`Hdt::connected_many`] forced through the scalar memo path
    /// regardless of the interleaved toggle — the differential oracle the
    /// interleaved engine is tested (and benchmarked) against.
    pub fn connected_many_scalar(&self, pairs: &[(u32, u32)], out: &mut Vec<bool>) {
        self.forest(0).connected_many_scalar_into(pairs, out);
    }

    // ----- durability hooks (used by the `dc_durable` checkpoint layer) ------

    /// Exports the complete logical edge state for checkpoint serialization:
    /// calls `spanning(u, v, level)` once per spanning edge at its exact
    /// level and `nonspanning(u, v, level)` once per non-spanning edge at
    /// its level.
    ///
    /// Spanning edges are walked out of the per-level ETT edge-node
    /// registries top-down — an edge's exact level is the *highest* forest
    /// that contains it, since a level-`l` spanning edge is linked into
    /// forests `0..=l`. Non-spanning edges are walked out of the non-tree
    /// adjacency store's materialized pages; each edge sits in both
    /// endpoints' slots and only the copy at the smaller endpoint is
    /// emitted. Both walks are cross-checked entry-by-entry (and in total)
    /// against the edge-state map, so an internally inconsistent structure
    /// panics here instead of producing a corrupt checkpoint.
    ///
    /// Same synchronization contract as [`Hdt::add_edge_locked`]: the
    /// structure must be write-quiescent (concurrent lock-free readers are
    /// fine).
    pub fn export_edges_locked(
        &self,
        mut spanning: impl FnMut(u32, u32, u8),
        mut nonspanning: impl FnMut(u32, u32, u8),
    ) {
        let mut seen: std::collections::HashSet<Edge> = std::collections::HashSet::new();
        let mut spanning_count = 0usize;
        for lvl in (0..self.levels.len()).rev() {
            let Some(forest) = self.levels[lvl].get() else {
                continue;
            };
            forest.for_each_tree_edge(&mut |u, v| {
                let edge = Edge::new(u, v);
                if seen.insert(edge) {
                    let state = self.states.get(&edge);
                    assert!(
                        matches!(&state, Some(st) if st.status == Status::Spanning
                            && st.level as usize == lvl),
                        "checkpoint export: forest {lvl} holds {edge:?} as its highest \
                         level but the state map says {state:?}"
                    );
                    spanning(edge.u(), edge.v(), lvl as u8);
                    spanning_count += 1;
                }
            });
        }
        assert_eq!(
            spanning_count,
            self.forest(0).num_tree_edges(),
            "checkpoint export: spanning walk disagrees with the level-0 forest"
        );
        let mut nonspanning_count = 0usize;
        self.nontree_adj
            .for_each_entry(|level, vertex, edge: Edge| {
                if vertex != edge.u() {
                    return;
                }
                let state = self.states.get(&edge);
                assert!(
                    matches!(&state, Some(st) if st.status == Status::NonSpanning
                    && st.level as usize == level),
                    "checkpoint export: adjacency level {level} holds {edge:?} but the \
                 state map says {state:?}"
                );
                nonspanning(edge.u(), edge.v(), level as u8);
                nonspanning_count += 1;
            });
        assert_eq!(
            spanning_count + nonspanning_count,
            self.states.len(),
            "checkpoint export: walks missed edges the state map holds"
        );
    }

    /// Restores a spanning edge at its exact checkpoint level: links it into
    /// forests `0..=level`, records the exact-level spanning adjacency and
    /// raises the subtree flags — the inverse of one
    /// [`Hdt::export_edges_locked`] `spanning` callback.
    ///
    /// Restore contract: the caller feeds back exactly an exported edge set
    /// (all spanning edges first, then non-spanning), in any order within
    /// each class, into a structure of the same vertex count with none of
    /// those edges present. Single-writer, like all structural methods.
    pub fn restore_spanning_edge_locked(&self, u: u32, v: u32, level: u8) {
        let edge = Edge::new(u, v);
        assert!(
            !self.has_edge(u, v),
            "restore of an already-present edge {edge:?}"
        );
        assert!((level as usize) < self.levels.len(), "level out of range");
        self.make_spanning(edge, level as usize);
        self.states
            .insert(edge, EdgeState::new(Status::Spanning, level));
    }

    /// Restores a non-spanning edge at its exact checkpoint level: records
    /// the adjacency info and raises the subtree flags — the inverse of one
    /// [`Hdt::export_edges_locked`] `nonspanning` callback. Must run after
    /// every spanning edge was restored (see
    /// [`Hdt::restore_spanning_edge_locked`] for the full contract).
    pub fn restore_nonspanning_edge_locked(&self, u: u32, v: u32, level: u8) {
        let edge = Edge::new(u, v);
        assert!(
            !self.has_edge(u, v),
            "restore of an already-present edge {edge:?}"
        );
        assert!((level as usize) < self.levels.len(), "level out of range");
        debug_assert!(
            self.forest(0).same_tree_locked(u, v),
            "non-spanning restore of {edge:?} before its component's spanning edges"
        );
        self.add_nonspanning_info(level as usize, edge);
        self.states
            .insert(edge, EdgeState::new(Status::NonSpanning, level));
    }

    // ----- internal helpers ---------------------------------------------------

    /// Inserts the adjacency information of a non-spanning edge at `level`
    /// and raises the subtree flags (paper Listing 6, `add_info`). Lock-free.
    pub(crate) fn add_nonspanning_info(&self, level: usize, edge: Edge) {
        let forest = self.forest(level);
        for v in [edge.u(), edge.v()] {
            self.nontree_adj.add(level, v, edge);
            forest.mark_path_upward(v, Mark::NonSpanning);
        }
    }

    /// Removes one copy of the adjacency information of a non-spanning edge
    /// at `level` (paper Listing 6, `remove_info`). Lock-free; flags are only
    /// lowered with the re-check dance so racing insertions are never lost.
    pub(crate) fn remove_nonspanning_info(&self, level: usize, edge: Edge) {
        let forest = self.forest(level);
        for v in [edge.u(), edge.v()] {
            self.nontree_adj.remove(level, v, &edge);
            if self.nontree_adj.is_empty(level, v) {
                forest.set_vertex_self_mark(v, Mark::NonSpanning, false);
                if !self.nontree_adj.is_empty(level, v) {
                    // A concurrent insertion raced with the clearing; restore.
                    forest.set_vertex_self_mark(v, Mark::NonSpanning, true);
                }
            }
        }
    }

    /// Makes `edge` a spanning edge at `level`: links it into forests
    /// `0..=level`, records it in the exact-level spanning adjacency and
    /// raises the spanning subtree flags. Caller must hold the locks.
    /// Fallible [`Hdt::make_spanning`] for the add path (always level 0):
    /// the single forest link is attempted through the backend's
    /// `try_link`, and on rejection nothing — no adjacency record, no mark,
    /// no event — has happened yet.
    fn try_make_spanning_level0(&self, edge: Edge) -> Result<(), dc_ett::ArenaExhausted> {
        let (u, v) = edge.endpoints();
        self.forest(0).try_link(u, v)?;
        dc_obs::event(dc_obs::EventKind::Link, 0, dc_obs::pack_edge(u, v));
        let forest = self.forest(0);
        for x in [u, v] {
            self.tree_adj.add(0, x, edge);
            forest.mark_path_upward(x, Mark::Spanning);
        }
        Ok(())
    }

    fn make_spanning(&self, edge: Edge, level: usize) {
        let (u, v) = edge.endpoints();
        dc_obs::event(
            dc_obs::EventKind::Link,
            level as u64,
            dc_obs::pack_edge(u, v),
        );
        for lvl in 0..=level {
            self.forest(lvl).link(u, v);
        }
        let forest = self.forest(level);
        for x in [u, v] {
            self.tree_adj.add(level, x, edge);
            forest.mark_path_upward(x, Mark::Spanning);
        }
    }

    fn remove_tree_adj(&self, level: usize, edge: Edge) {
        let forest = self.forest(level);
        for x in [edge.u(), edge.v()] {
            self.tree_adj.remove(level, x, &edge);
            if self.tree_adj.is_empty(level, x) {
                forest.set_vertex_self_mark(x, Mark::Spanning, false);
            }
        }
    }

    /// Removes a spanning edge of the given level: cuts it out of every
    /// forest that contains it, searches for a replacement level by level
    /// (promoting edges along the way), and either reconnects the trees with
    /// the replacement or commits the split (paper Section 4.1 plus the
    /// prepared-cut trick that keeps readers from ever observing a transient
    /// split when a replacement exists).
    fn remove_spanning_edge(&self, edge: Edge, level: usize) {
        let (u, v) = edge.endpoints();
        // Announce the removal for the conflict handshake with concurrent
        // non-blocking additions (see `crate::nonblocking`): the marker is
        // keyed by the component representative readers observe, and it stays
        // published for the whole replacement search.
        let component_root = self.forest(0).component_root(u);
        self.publish_removal(
            component_root,
            Arc::new(RemovalOp {
                edge: edge.endpoints(),
            }),
        );
        self.remove_tree_adj(level, edge);
        // Cut the edge from every forest that contains it. Levels >= 1 are
        // invisible to readers and are cut outright; level 0 is only
        // *prepared* so concurrent readers keep seeing one component until we
        // know whether a replacement exists.
        if level >= 1 {
            for lvl in (1..=level).rev() {
                self.forest(lvl).cut(u, v);
            }
        }
        let prepared = self.forest(0).prepare_cut(u, v);
        dc_obs::event(
            dc_obs::EventKind::Cut,
            level as u64,
            dc_obs::pack_edge(u, v),
        );

        let search_span = dc_obs::span(dc_obs::SpanId::ReplacementSearch);
        let mut replacement: Option<(Edge, usize)> = None;
        for lvl in (0..=level).rev() {
            let forest = self.forest(lvl);
            let ru = forest.component_root(u);
            let rv = forest.component_root(v);
            debug_assert_ne!(ru, rv, "forest {lvl} still connected after the cut");
            let small_root = if forest.tree_size(ru) <= forest.tree_size(rv) {
                ru
            } else {
                rv
            };
            // 1. Promote exact-level spanning edges of the smaller side.
            self.promote_spanning_edges(lvl, small_root);
            // 2. Scan the smaller side's non-spanning edges for a replacement.
            let mut sampling_budget = self.sampling_limit;
            if let Some(found) = self.scan_for_replacement(lvl, small_root, &mut sampling_budget) {
                replacement = Some((found, lvl));
                break;
            }
        }
        drop(search_span);
        dc_obs::event(
            dc_obs::EventKind::ReplacementSearch,
            level as u64,
            replacement.map_or(0, |(_, lvl)| lvl as u64 + 1),
        );

        match replacement {
            Some((found, lvl)) => {
                self.stats
                    .replacements_found
                    .fetch_add(1, Ordering::Relaxed);
                dc_obs::counter_add(dc_obs::Counter::HdtReplacementsFound, 1);
                // The scan already moved the edge's state to `Spanning(lvl)`.
                self.remove_nonspanning_info(lvl, found);
                let (fu, fv) = found.endpoints();
                dc_obs::event(
                    dc_obs::EventKind::Link,
                    lvl as u64,
                    dc_obs::pack_edge(fu, fv),
                );
                for l in 0..=lvl {
                    self.forest(l).link(fu, fv);
                }
                // The level-0 link rewired the prepared pieces back into one
                // tour and overwrote the last stale parent pointer that
                // could lead to the cut's two tour edge nodes; they are now
                // unreachable for new traversals and can wait out their
                // grace period.
                self.forest(0).retire_cut_nodes(&prepared);
                let forest = self.forest(lvl);
                for x in [fu, fv] {
                    self.tree_adj.add(lvl, x, found);
                    forest.mark_path_upward(x, Mark::Spanning);
                }
            }
            None => {
                // `commit_cut` retires the pair itself.
                self.forest(0).commit_cut(&prepared);
            }
        }
        self.unpublish_removal(component_root);
    }

    /// Promotes every spanning edge of exactly `level` inside the tree of
    /// `root` (in the level-`level` forest) to `level + 1`, guided by the
    /// backend's mark-filtered walk (the ETT prunes whole subtrees through
    /// its aggregate flags and repairs them post-order; the LCT enumerates
    /// the piece — see `DESIGN.md` §12 for the tradeoff).
    fn promote_spanning_edges(&self, level: usize, root: F::Root) {
        let forest = self.forest(level);
        forest.visit_marked_vertices(root, Mark::Spanning, &mut |vertex| {
            self.promote_vertex_spanning_edges(level, vertex);
            ControlFlow::Continue(())
        });
    }

    /// The per-vertex payload of [`Hdt::promote_spanning_edges`]: drains the
    /// exact-level spanning adjacency slot of `vertex`, promoting each edge
    /// one level up. Harmless on vertices with an empty slot.
    fn promote_vertex_spanning_edges(&self, level: usize, vertex: u32) {
        let forest = self.forest(level);
        let mut promoted = 0u64;
        // Promotion is a drain: every copy in this slot either moves up
        // one level or is a stale duplicate to discard, so `pop` removes
        // entries one at a time with no snapshot allocation.
        while let Some(edge) = self.tree_adj.pop(level, vertex) {
            // The edge may have been promoted already through its other
            // endpoint; the state map is the source of truth (a stale
            // copy is simply dropped — `pop` already removed it).
            let state = match self.states.get(&edge) {
                Some(st) if st.status == Status::Spanning && st.level as usize == level => st,
                _ => continue,
            };
            let next_level = level + 1;
            assert!(
                next_level < self.levels.len(),
                "level structure overflow: component-size invariant violated"
            );
            let (eu, ev) = edge.endpoints();
            // Move the exact-level adjacency up one level (our own copy
            // is already popped; this clears the other endpoint's copy
            // and lowers emptied self marks).
            self.remove_tree_adj(level, edge);
            self.forest(next_level).link(eu, ev);
            let upper = self.forest(next_level);
            for x in [eu, ev] {
                self.tree_adj.add(next_level, x, edge);
                upper.mark_path_upward(x, Mark::Spanning);
            }
            self.states
                .insert(edge, state.with(Status::Spanning, next_level as u8));
            promoted += 1;
        }
        if promoted > 0 {
            dc_obs::event(dc_obs::EventKind::LevelPromotion, promoted, level as u64);
        }
        if self.tree_adj.is_empty(level, vertex) {
            forest.set_vertex_self_mark(vertex, Mark::Spanning, false);
        }
    }

    /// Scans the non-spanning edges of exactly `level` adjacent to the tree
    /// of `root`, promoting non-replacement edges (after the sampling budget
    /// is exhausted) and returning the first replacement found.
    ///
    /// When a replacement is found its state has already been advanced to
    /// `Spanning(level)`; the caller links it into the forests. The break
    /// aborts the backend's walk — pending aggregate repairs are skipped,
    /// which is the conservative direction (see the trait contract).
    fn scan_for_replacement(
        &self,
        level: usize,
        root: F::Root,
        sampling_budget: &mut usize,
    ) -> Option<Edge> {
        let forest = self.forest(level);
        let mut found = None;
        forest.visit_marked_vertices(root, Mark::NonSpanning, &mut |vertex| {
            found = self.scan_vertex(level, vertex, sampling_budget);
            if found.is_some() {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        found
    }

    /// Returns `true` if `edge` reconnects the two pieces of the level-`lvl`
    /// forest (exact, writer-side check — valid under the component lock).
    fn crosses(&self, level: usize, edge: Edge) -> bool {
        let forest = self.forest(level);
        forest.component_root(edge.u()) != forest.component_root(edge.v())
    }

    fn scan_vertex(&self, level: usize, vertex: u32, sampling_budget: &mut usize) -> Option<Edge> {
        // Allocation-free visit: edges stream through the store's fixed
        // chunk buffer, and the closure may mutate the very slot being
        // visited (promotions below remove from it) — the visitor restarts
        // on reorganization, and every arm here is idempotent per edge.
        let mut found = None;
        let _ = self.nontree_adj.for_each_edge(level, vertex, |edge| {
            let state = match self.states.get(&edge) {
                Some(st) => st,
                // Removed concurrently; the copy is cleaned by its owner.
                None => return ControlFlow::Continue(()),
            };
            match state.status {
                Status::Initial => {
                    // A lock-free addition is in flight (level is always 0 for
                    // Initial edges). Help it complete (paper Listing 10).
                    debug_assert_eq!(level, 0);
                    if self.crosses(level, edge) {
                        if self
                            .states
                            .compare_exchange(
                                &edge,
                                &state,
                                state.with(Status::Spanning, level as u8),
                            )
                            .is_ok()
                        {
                            found = Some(edge);
                            return ControlFlow::Break(());
                        }
                    } else {
                        // Help finish the addition as a non-spanning edge:
                        // publish a second info copy first (the original
                        // adder retracts its own copy when its CAS fails), so
                        // the edge is never visible as NonSpanning without
                        // adjacency information.
                        self.add_nonspanning_info(level, edge);
                        if self
                            .states
                            .compare_exchange(
                                &edge,
                                &state,
                                state.with(Status::NonSpanning, level as u8),
                            )
                            .is_err()
                        {
                            self.remove_nonspanning_info(level, edge);
                        }
                    }
                }
                Status::NonSpanning if state.level as usize == level => {
                    if self.crosses(level, edge) {
                        if self
                            .states
                            .compare_exchange(
                                &edge,
                                &state,
                                state.with(Status::Spanning, level as u8),
                            )
                            .is_ok()
                        {
                            found = Some(edge);
                            return ControlFlow::Break(());
                        }
                    } else if *sampling_budget > 0 {
                        // Sampling fast path: examine without promoting.
                        *sampling_budget -= 1;
                    } else {
                        // Promote the edge to the next level (it cannot be a
                        // replacement now and will stay non-spanning there).
                        let next_level = level + 1;
                        assert!(next_level < self.levels.len(), "level structure overflow");
                        self.add_nonspanning_info(next_level, edge);
                        if self
                            .states
                            .compare_exchange(
                                &edge,
                                &state,
                                state.with(Status::NonSpanning, next_level as u8),
                            )
                            .is_ok()
                        {
                            self.remove_nonspanning_info(level, edge);
                        } else {
                            self.remove_nonspanning_info(next_level, edge);
                        }
                    }
                }
                _ => {
                    // Spanning, InProgress or stale-level copies: skip.
                }
            }
            ControlFlow::Continue(())
        });
        found
    }

    /// Validates the full structure (intended for tests): every forest's
    /// internal invariants, the consistency of the state map with the
    /// spanning forests, and the HDT level invariants.
    pub fn validate(&self) {
        // A level that was never materialized trivially holds no edges and
        // all-singleton components; only built forests need validating.
        for level in self.levels.iter() {
            if let Some(forest) = level.get() {
                forest.validate();
            }
        }
        self.states.for_each(|edge, state| {
            let (u, v) = edge.endpoints();
            match state.status {
                Status::Spanning => {
                    for (lvl, level) in self.levels.iter().enumerate() {
                        let present = level.get().is_some_and(|f| f.has_tree_edge(u, v));
                        if lvl <= state.level as usize {
                            assert!(present, "spanning edge {edge:?} missing from forest {lvl}");
                        } else {
                            assert!(!present, "spanning edge {edge:?} present above its level");
                        }
                    }
                }
                Status::NonSpanning => {
                    let lvl = state.level as usize;
                    assert!(
                        self.forest(0).same_tree_locked(u, v),
                        "non-spanning edge {edge:?} crosses components"
                    );
                    assert!(
                        self.nontree_adj.contains(lvl, u, edge)
                            && self.nontree_adj.contains(lvl, v, edge),
                        "non-spanning edge {edge:?} missing adjacency info at level {lvl}"
                    );
                    for level in self.levels.iter() {
                        if let Some(forest) = level.get() {
                            assert!(!forest.has_tree_edge(u, v));
                        }
                    }
                }
                Status::Initial | Status::InProgress => {}
            }
        });
        // Level-structure invariant: components at level i have at most
        // n / 2^i vertices.
        for (lvl, level) in self.levels.iter().enumerate() {
            let Some(forest) = level.get() else {
                continue; // all components are singletons
            };
            let bound = (self.n as f64 / 2f64.powi(lvl as i32)).ceil() as u32;
            for v in 0..self.n as u32 {
                assert!(
                    forest.component_size(v) <= bound.max(1),
                    "component of {v} at level {lvl} exceeds n/2^{lvl}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_performs_no_adjacency_allocations() {
        // The acceptance bar for the flat store: a million-vertex structure
        // must come up with zero materialized adjacency slots (memory scales
        // with touched (level, vertex) pairs, not n log n) and only the
        // level-0 forest built.
        let hdt = Hdt::new(1_000_000);
        assert_eq!(hdt.nontree_store().materialized_slots(), 0);
        assert_eq!(hdt.tree_store().materialized_slots(), 0);
        assert_eq!(hdt.nontree_store().materialized_pages(), 0);
        assert_eq!(hdt.tree_store().materialized_pages(), 0);
        assert_eq!(hdt.materialized_forest_levels(), 1);
        // Queries on the fresh structure touch nothing.
        assert!(!hdt.connected(0, 999_999));
        assert_eq!(hdt.nontree_store().materialized_pages(), 0);
        // The first cycle-closing edge touches exactly its two level-0
        // non-spanning slots.
        hdt.add_edge_locked(1, 2);
        hdt.add_edge_locked(2, 3);
        hdt.add_edge_locked(1, 3);
        // Spanning edges (1,2) and (2,3) touch the three level-0 tree slots
        // of vertices 1, 2 and 3; the cycle edge (1,3) touches the two
        // level-0 non-tree slots of vertices 1 and 3.
        assert_eq!(hdt.nontree_store().materialized_slots(), 2);
        assert_eq!(hdt.tree_store().materialized_slots(), 3);
    }

    #[test]
    fn upper_forest_levels_materialize_only_when_promoted_into() {
        let hdt = Hdt::with_sampling(16, 0); // sampling off => eager promotion
        assert_eq!(hdt.materialized_forest_levels(), 1);
        // A dense clique forces replacement searches that promote edges.
        for u in 0..8 {
            for v in (u + 1)..8 {
                hdt.add_edge_locked(u, v);
            }
        }
        for u in 0..8 {
            for v in (u + 1)..8u32 {
                if (u + v) % 2 == 0 {
                    hdt.remove_edge_locked(u, v);
                }
            }
        }
        assert!(
            hdt.materialized_forest_levels() > 1,
            "promotions must have reached level 1"
        );
        assert!(hdt.materialized_forest_levels() <= hdt.num_levels());
        assert!(
            !hdt.forest(1).hints_materialized(),
            "upper-level forests are never queried, so they must not pay the hint table"
        );
        hdt.validate();
    }

    #[test]
    fn empty_structure_answers_queries() {
        let hdt = Hdt::new(8);
        assert!(hdt.connected(3, 3));
        assert!(!hdt.connected(0, 7));
        assert_eq!(hdt.component_size(4), 1);
        assert!(!hdt.has_edge(0, 1));
        hdt.validate();
    }

    #[test]
    fn add_and_remove_single_edge() {
        let hdt = Hdt::new(4);
        assert!(hdt.add_edge_locked(0, 1));
        assert!(!hdt.add_edge_locked(0, 1), "duplicate add must be rejected");
        assert!(hdt.connected(0, 1));
        assert!(hdt.has_edge(1, 0));
        hdt.validate();
        assert!(hdt.remove_edge_locked(0, 1));
        assert!(!hdt.remove_edge_locked(0, 1));
        assert!(!hdt.connected(0, 1));
        hdt.validate();
    }

    #[test]
    fn non_spanning_edge_removal_keeps_connectivity() {
        let hdt = Hdt::new(4);
        hdt.add_edge_locked(0, 1);
        hdt.add_edge_locked(1, 2);
        hdt.add_edge_locked(0, 2); // closes a cycle: non-spanning
        let stats = hdt.stats();
        assert_eq!(stats.non_spanning_additions, 1);
        hdt.validate();
        assert!(hdt.remove_edge_locked(0, 2));
        assert!(
            hdt.connected(0, 2),
            "removing a cycle edge keeps connectivity"
        );
        hdt.validate();
    }

    #[test]
    fn spanning_edge_removal_finds_replacement() {
        let hdt = Hdt::new(4);
        hdt.add_edge_locked(0, 1); // spanning
        hdt.add_edge_locked(1, 2); // spanning
        hdt.add_edge_locked(0, 2); // non-spanning (cycle)
        assert!(hdt.remove_edge_locked(0, 1));
        assert!(
            hdt.connected(0, 1),
            "the non-spanning edge (0,2) must replace the removed spanning edge"
        );
        assert_eq!(hdt.stats().replacements_found, 1);
        hdt.validate();
        assert!(hdt.remove_edge_locked(1, 2));
        assert!(hdt.connected(0, 2));
        assert!(!hdt.connected(1, 2) || hdt.connected(1, 2));
        hdt.validate();
    }

    #[test]
    fn spanning_edge_removal_without_replacement_splits() {
        let hdt = Hdt::new(6);
        for v in 0..5 {
            hdt.add_edge_locked(v, v + 1);
        }
        assert!(hdt.remove_edge_locked(2, 3));
        assert!(!hdt.connected(0, 5));
        assert!(hdt.connected(0, 2));
        assert!(hdt.connected(3, 5));
        hdt.validate();
    }

    #[test]
    fn dense_component_survives_many_spanning_removals() {
        // Complete graph on 8 vertices: any spanning edge removal must find a
        // replacement, possibly promoting edges through several levels.
        let n = 8u32;
        let hdt = Hdt::new(n as usize);
        for u in 0..n {
            for v in (u + 1)..n {
                hdt.add_edge_locked(u, v);
            }
        }
        hdt.validate();
        // Remove edges one by one in arbitrary order; connectivity must hold
        // until fewer than n-1 edges remain ... we only remove half of them.
        let mut removed = 0;
        for u in 0..n {
            for v in (u + 1)..n {
                if (u + v) % 2 == 0 && removed < 14 {
                    assert!(hdt.remove_edge_locked(u, v));
                    removed += 1;
                    assert!(hdt.connected(0, n - 1));
                }
            }
        }
        hdt.validate();
    }

    #[test]
    fn lock_components_locks_current_roots() {
        let hdt = Hdt::new(6);
        hdt.add_edge_locked(0, 1);
        hdt.add_edge_locked(2, 3);
        let locked = hdt.lock_components(0, 2);
        assert_eq!(locked.count, 2);
        // Same-component locking takes a single lock.
        hdt.unlock_components(locked);
        let locked = hdt.lock_components(0, 1);
        assert_eq!(locked.count, 1);
        hdt.unlock_components(locked);
        // with_components_locked releases on exit.
        let answer = hdt.with_components_locked(0, 3, || hdt.connected_locked(0, 3));
        assert!(!answer);
        let locked = hdt.lock_components(0, 3);
        hdt.unlock_components(locked);
    }

    #[test]
    fn stats_snapshot_rates() {
        let hdt = Hdt::new(5);
        hdt.add_edge_locked(0, 1);
        hdt.add_edge_locked(1, 2);
        hdt.add_edge_locked(0, 2);
        hdt.remove_edge_locked(0, 2);
        hdt.remove_edge_locked(0, 1);
        let stats = hdt.stats();
        assert_eq!(stats.additions, 3);
        assert_eq!(stats.non_spanning_additions, 1);
        assert_eq!(stats.removals, 2);
        assert_eq!(stats.non_spanning_removals, 1);
        assert!((stats.non_spanning_addition_rate() - 100.0 / 3.0).abs() < 1e-9);
        assert!((stats.non_spanning_removal_rate() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn connected_many_matches_per_pair_connected() {
        let hdt = Hdt::new(16);
        for v in 0..7 {
            hdt.add_edge_locked(v, v + 1); // one path component 0..=7
        }
        hdt.add_edge_locked(9, 10);
        let pairs: Vec<(u32, u32)> = vec![
            (0, 7),
            (3, 3),
            (0, 9),
            (9, 10),
            (10, 9), // repeated pair, other orientation
            (5, 2),
            (11, 12),
            (0, 7), // repeated pair
        ];
        // Cold cache, warm cache, and hints-off must all agree with the
        // one-at-a-time protocol.
        for enabled in [true, true, false] {
            hdt.set_read_hints(enabled);
            let mut bulk = Vec::new();
            hdt.connected_many(&pairs, &mut bulk);
            let single: Vec<bool> = pairs.iter().map(|&(u, v)| hdt.connected(u, v)).collect();
            assert_eq!(bulk, single);
            assert_eq!(bulk, vec![true, true, false, true, true, true, false, true]);
        }
        hdt.set_read_hints(true);
        let stats = hdt.stats();
        assert!(
            stats.read_hint_hits > 0,
            "warm bulk queries must hit the hint cache: {stats:?}"
        );
    }

    #[test]
    fn randomized_against_bfs_oracle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let n = 24usize;
        let hdt = Hdt::new(n);
        let mut rng = StdRng::seed_from_u64(2024);
        let mut present: Vec<(u32, u32)> = Vec::new();
        let mut edge_set = std::collections::HashSet::new();
        let connected_model = |edges: &std::collections::HashSet<(u32, u32)>, a: u32, b: u32| {
            if a == b {
                return true;
            }
            let mut visited = std::collections::HashSet::new();
            let mut queue = std::collections::VecDeque::new();
            visited.insert(a);
            queue.push_back(a);
            while let Some(x) = queue.pop_front() {
                if x == b {
                    return true;
                }
                for &(p, q) in edges.iter() {
                    let next = if p == x {
                        Some(q)
                    } else if q == x {
                        Some(p)
                    } else {
                        None
                    };
                    if let Some(y) = next {
                        if visited.insert(y) {
                            queue.push_back(y);
                        }
                    }
                }
            }
            false
        };
        for step in 0..4000 {
            let op = rng.gen_range(0..100);
            if op < 45 || present.is_empty() {
                let u = rng.gen_range(0..n as u32);
                let v = rng.gen_range(0..n as u32);
                if u != v && !edge_set.contains(&(u.min(v), u.max(v))) {
                    hdt.add_edge_locked(u, v);
                    edge_set.insert((u.min(v), u.max(v)));
                    present.push((u.min(v), u.max(v)));
                }
            } else if op < 80 {
                let idx = rng.gen_range(0..present.len());
                let (u, v) = present.swap_remove(idx);
                edge_set.remove(&(u, v));
                assert!(hdt.remove_edge_locked(u, v));
            } else {
                let a = rng.gen_range(0..n as u32);
                let b = rng.gen_range(0..n as u32);
                assert_eq!(
                    hdt.connected(a, b),
                    connected_model(&edge_set, a, b),
                    "connectivity mismatch at step {step} for ({a}, {b})"
                );
            }
            if step % 1000 == 999 {
                hdt.validate();
            }
        }
        hdt.validate();
    }
}
