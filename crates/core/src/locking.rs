//! Update-locking schemes shared by the algorithm variants.
//!
//! A scheme answers one question: *how does a modification obtain exclusive
//! ownership of the component(s) it touches?*  The paper evaluates three
//! answers — one global lock, one global lock with hardware lock elision,
//! and fine-grained per-component locks (Listing 2) — and combines each with
//! the read-side and non-spanning-edge optimizations.  Implementing the
//! schemes behind one trait lets each combination be a thin wrapper.

use crate::hdt::Hdt;
use dc_ett::DynamicForest;
use dc_sync::{waitstats, ElisionLock, RawSpinLock};

/// How update operations serialize against each other, on any
/// [`DynamicForest`] backend.
pub trait UpdateLocking: Send + Sync {
    /// Runs `f` while holding whatever locks cover the components of `u` and
    /// `v`.
    fn with_locked<R, F: DynamicForest>(
        &self,
        hdt: &Hdt<F>,
        u: u32,
        v: u32,
        f: impl FnOnce() -> R,
    ) -> R;
}

/// One global lock serializing all updates (coarse-grained locking).
#[derive(Default)]
pub struct GlobalLocking {
    lock: RawSpinLock,
}

impl GlobalLocking {
    /// Creates the scheme.
    pub fn new() -> Self {
        Self::default()
    }
}

impl UpdateLocking for GlobalLocking {
    fn with_locked<R, F: DynamicForest>(
        &self,
        _hdt: &Hdt<F>,
        _u: u32,
        _v: u32,
        f: impl FnOnce() -> R,
    ) -> R {
        self.lock.lock();
        let out = f();
        self.lock.unlock();
        out
    }
}

/// One global lock accessed through the lock-elision emulation (the "HTM"
/// variants; see `DESIGN.md` §4 for the substitution).
#[derive(Default)]
pub struct ElisionLocking {
    lock: ElisionLock<()>,
}

impl ElisionLocking {
    /// Creates the scheme.
    pub fn new() -> Self {
        Self::default()
    }
}

impl UpdateLocking for ElisionLocking {
    fn with_locked<R, F: DynamicForest>(
        &self,
        _hdt: &Hdt<F>,
        _u: u32,
        _v: u32,
        f: impl FnOnce() -> R,
    ) -> R {
        let guard = self.lock.lock();
        let out = f();
        drop(guard);
        out
    }
}

/// Per-component locks keyed by the level-0 forest representatives
/// (fine-grained locking, paper Listing 2).
///
/// Backend caveat: the climb–lock–recheck protocol is only sound on
/// backends whose representative changes at most once per structural
/// operation, at its linearization store (the ETT). Backends that
/// restructure through many transient representatives mid-operation (the
/// LCT) cannot use this scheme — see `Variant::supports_backend` and
/// `DESIGN.md` §12.
#[derive(Default)]
pub struct FineLocking;

impl FineLocking {
    /// Creates the scheme.
    pub fn new() -> Self {
        FineLocking
    }
}

impl UpdateLocking for FineLocking {
    fn with_locked<R, F: DynamicForest>(
        &self,
        hdt: &Hdt<F>,
        u: u32,
        v: u32,
        f: impl FnOnce() -> R,
    ) -> R {
        let locked = hdt.lock_components(u, v);
        let out = f();
        hdt.unlock_components(locked);
        out
    }
}

/// A global readers-writer lock (coarse-grained RW variant); updates take the
/// write side, queries the read side.
#[derive(Default)]
pub struct GlobalRwLocking {
    lock: dc_sync::RawRwLock,
}

impl GlobalRwLocking {
    /// Creates the scheme.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` under the shared (read) side of the lock.
    pub fn with_read<R>(&self, f: impl FnOnce() -> R) -> R {
        self.lock.read_lock();
        let out = f();
        self.lock.read_unlock();
        out
    }
}

impl UpdateLocking for GlobalRwLocking {
    fn with_locked<R, F: DynamicForest>(
        &self,
        _hdt: &Hdt<F>,
        _u: u32,
        _v: u32,
        f: impl FnOnce() -> R,
    ) -> R {
        let timer = waitstats::WaitTimer::start();
        self.lock.lock();
        timer.finish();
        let out = f();
        self.lock.unlock();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn exercise<L: UpdateLocking>(scheme: &L) {
        let hdt = Hdt::new(8);
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..2_000 {
                        scheme.with_locked(&hdt, 0, 1, || {
                            let v = counter.load(Ordering::Relaxed);
                            counter.store(v + 1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8_000);
    }

    #[test]
    fn global_locking_is_mutually_exclusive() {
        exercise(&GlobalLocking::new());
    }

    #[test]
    fn elision_locking_is_mutually_exclusive() {
        exercise(&ElisionLocking::new());
    }

    #[test]
    fn rw_locking_write_side_is_mutually_exclusive() {
        exercise(&GlobalRwLocking::new());
    }

    #[test]
    fn fine_locking_serializes_same_component() {
        exercise(&FineLocking::new());
    }

    #[test]
    fn fine_locking_allows_disjoint_components_in_parallel() {
        // Two pairs of vertices in different components: both threads must be
        // able to hold their locks at the same time (we verify no deadlock
        // and correct mutual exclusion per component).
        let hdt = Arc::new(Hdt::new(8));
        hdt.add_edge_locked(0, 1);
        hdt.add_edge_locked(2, 3);
        let scheme = FineLocking::new();
        let c1 = AtomicU64::new(0);
        let c2 = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4 {
                let hdt = Arc::clone(&hdt);
                let scheme = &scheme;
                let (c1, c2) = (&c1, &c2);
                s.spawn(move || {
                    for _ in 0..1_000 {
                        if t % 2 == 0 {
                            scheme.with_locked(&hdt, 0, 1, || {
                                c1.fetch_add(1, Ordering::Relaxed);
                            });
                        } else {
                            scheme.with_locked(&hdt, 2, 3, || {
                                c2.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    }
                });
            }
        });
        assert_eq!(c1.load(Ordering::Relaxed), 2_000);
        assert_eq!(c2.load(Ordering::Relaxed), 2_000);
    }
}
