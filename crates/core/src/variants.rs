//! The lock-based algorithm variants of the evaluation (numbers 1–8) and the
//! registry that builds any of the thirteen variants by its paper number.
//!
//! | # | Paper name | Construction here |
//! |---|------------|-------------------|
//! | 1 | coarse-grained | [`LockedVariant`]`<GlobalLocking>`, locked reads |
//! | 2 | coarse-grained RW lock | [`CoarseRwVariant`] |
//! | 3 | coarse-grained + non-blocking reads | [`LockedVariant`]`<GlobalLocking>`, lock-free reads |
//! | 4 | coarse-grained + HTM | [`LockedVariant`]`<ElisionLocking>`, locked reads |
//! | 5 | coarse-grained + HTM + non-blocking reads | [`LockedVariant`]`<ElisionLocking>`, lock-free reads |
//! | 6 | fine-grained | [`LockedVariant`]`<FineLocking>`, locked reads |
//! | 7 | fine-grained RW locks | [`FineRwVariant`] |
//! | 8 | fine-grained + non-blocking reads | [`LockedVariant`]`<FineLocking>`, lock-free reads |
//! | 9 | our algorithm (fine-grained + non-blocking reads + non-blocking non-spanning updates) | [`crate::nonblocking::NonBlockingVariant`]`<FineLocking>` |
//! | 10 | our algorithm + coarse-grained | [`crate::nonblocking::NonBlockingVariant`]`<GlobalLocking>` |
//! | 11 | our algorithm + coarse-grained + HTM | [`crate::nonblocking::NonBlockingVariant`]`<ElisionLocking>` |
//! | 12 | parallel combining | [`crate::combining::CombiningVariant`] (parallel reads) |
//! | 13 | non-blocking reads + flat combining | [`crate::combining::CombiningVariant`] (flat combining, lock-free reads) |
//!
//! Beyond the paper, the registry accepts *extension engines* built in
//! higher layers: the `dc_batch` crate registers its batch-parallel engine
//! as number 14 via [`register_batch_builder`], and
//! [`Variant::all_extended`] appends it to the paper's thirteen once
//! registered (the core crate cannot depend on `dc_batch` — the dependency
//! points the other way — so the builder is injected at runtime).

use crate::api::DynamicConnectivity;
use crate::combining::CombiningVariant;
use crate::hdt::Hdt;
use crate::locking::{ElisionLocking, FineLocking, GlobalLocking, GlobalRwLocking, UpdateLocking};
use crate::nonblocking::NonBlockingVariant;
use dc_ett::{DynamicForest, EulerForest, LctForest};
use dc_sync::CombiningMode;
use std::sync::OnceLock;

/// The spanning-forest backend a variant is built over (see `DESIGN.md`
/// §12 for what each backend guarantees and which variants it supports).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ForestBackend {
    /// The treap Euler Tour Tree ([`EulerForest`]) — the paper's structure
    /// and the default; supports every variant.
    Ett,
    /// The splay-path link-cut tree ([`LctForest`]); supports the
    /// globally-serialized-writer variants only (its representative moves
    /// through transient apexes mid-operation, which breaks the
    /// climb–lock–recheck mutual exclusion of the fine-grained schemes and
    /// the representative-keyed removal handshake of the non-blocking
    /// protocol).
    Lct,
}

impl ForestBackend {
    /// Both shipped backends, ETT first.
    pub fn all() -> &'static [ForestBackend] {
        &[ForestBackend::Ett, ForestBackend::Lct]
    }

    /// The short lowercase label used in test failure messages, bench cells
    /// and knobs (matches `DynamicForest::BACKEND`).
    pub fn label(&self) -> &'static str {
        match self {
            ForestBackend::Ett => EulerForest::BACKEND,
            ForestBackend::Lct => LctForest::BACKEND,
        }
    }
}

/// Constructor for an extension engine (see [`register_batch_builder`]).
pub type BatchBuilder = fn(usize) -> Box<dyn DynamicConnectivity>;

static BATCH_BUILDER: OnceLock<BatchBuilder> = OnceLock::new();
static BATCH_BUILDER_LCT: OnceLock<BatchBuilder> = OnceLock::new();

/// Registers the builder behind [`Variant::BatchEngine`] on the default
/// (ETT) backend. Called once by `dc_batch::register_variant()`; later
/// calls are ignored.
pub fn register_batch_builder(builder: BatchBuilder) {
    let _ = BATCH_BUILDER.set(builder);
}

/// Registers the [`Variant::BatchEngine`] builder for the link-cut-tree
/// backend (used by [`Variant::build_with`] with [`ForestBackend::Lct`]).
pub fn register_batch_builder_lct(builder: BatchBuilder) {
    let _ = BATCH_BUILDER_LCT.set(builder);
}

/// Returns `true` once a [`Variant::BatchEngine`] builder was registered.
pub fn batch_builder_registered() -> bool {
    BATCH_BUILDER.get().is_some()
}

/// Whether a [`Variant::BatchEngine`] builder was registered for `backend`.
pub fn batch_builder_registered_for(backend: ForestBackend) -> bool {
    match backend {
        ForestBackend::Ett => BATCH_BUILDER.get().is_some(),
        ForestBackend::Lct => BATCH_BUILDER_LCT.get().is_some(),
    }
}

/// A dynamic connectivity structure whose updates run under an
/// [`UpdateLocking`] scheme, with either locked or lock-free reads.
pub struct LockedVariant<L: UpdateLocking, F: DynamicForest = EulerForest> {
    hdt: Hdt<F>,
    locking: L,
    lock_free_reads: bool,
}

impl<L: UpdateLocking> LockedVariant<L> {
    /// Creates the variant over `n` vertices on the default (ETT) backend.
    pub fn new(n: usize, locking: L, lock_free_reads: bool) -> Self {
        LockedVariant::new_on(n, locking, lock_free_reads)
    }
}

impl<L: UpdateLocking, F: DynamicForest> LockedVariant<L, F> {
    /// Creates the variant over `n` vertices on backend `F`.
    pub fn new_on(n: usize, locking: L, lock_free_reads: bool) -> Self {
        LockedVariant {
            hdt: Hdt::new_on(n),
            locking,
            lock_free_reads,
        }
    }

    /// Access to the underlying structure (tests and statistics).
    pub fn hdt(&self) -> &Hdt<F> {
        &self.hdt
    }
}

impl<L: UpdateLocking, F: DynamicForest> DynamicConnectivity for LockedVariant<L, F> {
    fn add_edge(&self, u: u32, v: u32) {
        if u == v {
            return;
        }
        self.locking.with_locked(&self.hdt, u, v, || {
            self.hdt.add_edge_locked(u, v);
        });
    }

    fn remove_edge(&self, u: u32, v: u32) {
        if u == v {
            return;
        }
        self.locking.with_locked(&self.hdt, u, v, || {
            self.hdt.remove_edge_locked(u, v);
        });
    }

    fn connected(&self, u: u32, v: u32) -> bool {
        if u == v {
            return true;
        }
        if self.lock_free_reads {
            self.hdt.connected(u, v)
        } else {
            self.locking
                .with_locked(&self.hdt, u, v, || self.hdt.connected_locked(u, v))
        }
    }

    fn num_vertices(&self) -> usize {
        self.hdt.num_vertices()
    }

    fn read_hint_counters(&self) -> Option<(u64, u64)> {
        let stats = self.hdt.stats();
        Some((stats.read_hint_hits, stats.read_hint_misses))
    }
}

/// Variant 2: a single global readers-writer lock; queries take the read
/// side, updates the write side.
pub struct CoarseRwVariant<F: DynamicForest = EulerForest> {
    hdt: Hdt<F>,
    locking: GlobalRwLocking,
}

impl CoarseRwVariant {
    /// Creates the variant over `n` vertices on the default (ETT) backend.
    pub fn new(n: usize) -> Self {
        CoarseRwVariant::new_on(n)
    }
}

impl<F: DynamicForest> CoarseRwVariant<F> {
    /// Creates the variant over `n` vertices on backend `F`.
    pub fn new_on(n: usize) -> Self {
        CoarseRwVariant {
            hdt: Hdt::new_on(n),
            locking: GlobalRwLocking::new(),
        }
    }
}

impl<F: DynamicForest> DynamicConnectivity for CoarseRwVariant<F> {
    fn add_edge(&self, u: u32, v: u32) {
        if u == v {
            return;
        }
        self.locking.with_locked(&self.hdt, u, v, || {
            self.hdt.add_edge_locked(u, v);
        });
    }

    fn remove_edge(&self, u: u32, v: u32) {
        if u == v {
            return;
        }
        self.locking.with_locked(&self.hdt, u, v, || {
            self.hdt.remove_edge_locked(u, v);
        });
    }

    fn connected(&self, u: u32, v: u32) -> bool {
        u == v || self.locking.with_read(|| self.hdt.connected_locked(u, v))
    }

    fn num_vertices(&self) -> usize {
        self.hdt.num_vertices()
    }

    fn read_hint_counters(&self) -> Option<(u64, u64)> {
        let stats = self.hdt.stats();
        Some((stats.read_hint_hits, stats.read_hint_misses))
    }
}

/// Variant 7: fine-grained readers-writer locks; queries acquire the
/// component locks in shared mode, updates in exclusive mode.
///
/// Fine-grained locking requires a representative-stable backend (see
/// [`FineLocking`]); only built on the ETT.
pub struct FineRwVariant {
    hdt: Hdt,
    locking: FineLocking,
}

impl FineRwVariant {
    /// Creates the variant over `n` vertices.
    pub fn new(n: usize) -> Self {
        FineRwVariant {
            hdt: Hdt::new(n),
            locking: FineLocking::new(),
        }
    }
}

impl DynamicConnectivity for FineRwVariant {
    fn add_edge(&self, u: u32, v: u32) {
        if u == v {
            return;
        }
        self.locking.with_locked(&self.hdt, u, v, || {
            self.hdt.add_edge_locked(u, v);
        });
    }

    fn remove_edge(&self, u: u32, v: u32) {
        if u == v {
            return;
        }
        self.locking.with_locked(&self.hdt, u, v, || {
            self.hdt.remove_edge_locked(u, v);
        });
    }

    fn connected(&self, u: u32, v: u32) -> bool {
        if u == v {
            return true;
        }
        let locked = self.hdt.lock_components_shared(u, v);
        let answer = self.hdt.connected_locked(u, v);
        self.hdt.unlock_components(locked);
        answer
    }

    fn num_vertices(&self) -> usize {
        self.hdt.num_vertices()
    }

    fn read_hint_counters(&self) -> Option<(u64, u64)> {
        let stats = self.hdt.stats();
        Some((stats.read_hint_hits, stats.read_hint_misses))
    }
}

/// Identifies one of the thirteen algorithm combinations of the paper's
/// evaluation (Section 5.2), keeping the paper's numbering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// (1) coarse-grained locking for every operation.
    CoarseGrained,
    /// (2) coarse-grained readers-writer lock.
    CoarseRwLock,
    /// (3) coarse-grained locking with non-blocking reads.
    CoarseNonBlockingReads,
    /// (4) coarse-grained locking with lock elision ("HTM").
    CoarseHtm,
    /// (5) coarse-grained + HTM + non-blocking reads.
    CoarseHtmNonBlockingReads,
    /// (6) fine-grained per-component locking.
    FineGrained,
    /// (7) fine-grained readers-writer locks.
    FineRwLocks,
    /// (8) fine-grained locking with non-blocking reads.
    FineNonBlockingReads,
    /// (9) the paper's full algorithm: fine-grained locking, non-blocking
    /// reads and non-blocking non-spanning edge updates.
    OurAlgorithm,
    /// (10) the full algorithm with coarse-grained locking for spanning
    /// updates.
    OurAlgorithmCoarse,
    /// (11) the full algorithm with coarse-grained locking and HTM.
    OurAlgorithmCoarseHtm,
    /// (12) parallel combining (read-parallel flat combining baseline).
    ParallelCombining,
    /// (13) flat combining for updates plus non-blocking reads.
    FlatCombiningNonBlockingReads,
    /// (14) the `dc_batch` batch-parallel engine (beyond the paper): sharded
    /// intake, batch annihilation, combined-pass updates and parallel
    /// post-batch queries. Only buildable after
    /// `dc_batch::register_variant()` injected its constructor.
    BatchEngine,
}

impl Variant {
    /// The thirteen paper variants plus every registered extension engine
    /// (currently [`Variant::BatchEngine`], once `dc_batch` registered it).
    pub fn all_extended() -> Vec<Variant> {
        let mut variants = Self::all().to_vec();
        if batch_builder_registered() {
            variants.push(Variant::BatchEngine);
        }
        variants
    }

    /// All variants in the paper's order.
    pub fn all() -> &'static [Variant] {
        use Variant::*;
        &[
            CoarseGrained,
            CoarseRwLock,
            CoarseNonBlockingReads,
            CoarseHtm,
            CoarseHtmNonBlockingReads,
            FineGrained,
            FineRwLocks,
            FineNonBlockingReads,
            OurAlgorithm,
            OurAlgorithmCoarse,
            OurAlgorithmCoarseHtm,
            ParallelCombining,
            FlatCombiningNonBlockingReads,
        ]
    }

    /// The inverse of [`Variant::paper_number`]: resolves a variant from
    /// its plot number (1–13 are the paper's variants, 14 the batch
    /// engine), or `None` for numbers outside the registry.
    ///
    /// Note that resolving 14 succeeds whether or not
    /// `dc_batch::register_variant()` has run — only
    /// [`Variant::build`] requires the builder; callers iterating
    /// `(1..=14).filter_map(Variant::by_paper_number)` should gate on
    /// [`batch_builder_registered`] before building number 14.
    pub fn by_paper_number(number: u8) -> Option<Variant> {
        match number {
            14 => Some(Variant::BatchEngine),
            _ => Variant::all()
                .iter()
                .copied()
                .find(|v| v.paper_number() == number),
        }
    }

    /// The variant number used in the paper's plots.
    pub fn paper_number(&self) -> u8 {
        use Variant::*;
        match self {
            CoarseGrained => 1,
            CoarseRwLock => 2,
            CoarseNonBlockingReads => 3,
            CoarseHtm => 4,
            CoarseHtmNonBlockingReads => 5,
            FineGrained => 6,
            FineRwLocks => 7,
            FineNonBlockingReads => 8,
            OurAlgorithm => 9,
            OurAlgorithmCoarse => 10,
            OurAlgorithmCoarseHtm => 11,
            ParallelCombining => 12,
            FlatCombiningNonBlockingReads => 13,
            BatchEngine => 14,
        }
    }

    /// The label used in the paper's plot legends.
    pub fn name(&self) -> &'static str {
        use Variant::*;
        match self {
            CoarseGrained => "(1) coarse-grained",
            CoarseRwLock => "(2) coarse-grained RW lock",
            CoarseNonBlockingReads => "(3) coarse-grained + non-bl. reads",
            CoarseHtm => "(4) coarse-grained + HTM",
            CoarseHtmNonBlockingReads => "(5) coarse-grained + HTM + non-bl. reads",
            FineGrained => "(6) fine-grained",
            FineRwLocks => "(7) fine-grained RW locks",
            FineNonBlockingReads => "(8) fine-grained + non-bl. reads",
            OurAlgorithm => "(9) our algorithm",
            OurAlgorithmCoarse => "(10) our algorithm + coarse-gr.",
            OurAlgorithmCoarseHtm => "(11) our algorithm + coarse-gr. + HTM",
            ParallelCombining => "(12) parallel combining",
            FlatCombiningNonBlockingReads => "(13) non-bl. reads + flat combining",
            BatchEngine => "(14) batched engine (dc_batch)",
        }
    }

    /// Builds an instance of this variant over `n` vertices.
    pub fn build(&self, n: usize) -> Box<dyn DynamicConnectivity> {
        use Variant::*;
        match self {
            CoarseGrained => Box::new(LockedVariant::new(n, GlobalLocking::new(), false)),
            CoarseRwLock => Box::new(CoarseRwVariant::new(n)),
            CoarseNonBlockingReads => Box::new(LockedVariant::new(n, GlobalLocking::new(), true)),
            CoarseHtm => Box::new(LockedVariant::new(n, ElisionLocking::new(), false)),
            CoarseHtmNonBlockingReads => {
                Box::new(LockedVariant::new(n, ElisionLocking::new(), true))
            }
            FineGrained => Box::new(LockedVariant::new(n, FineLocking::new(), false)),
            FineRwLocks => Box::new(FineRwVariant::new(n)),
            FineNonBlockingReads => Box::new(LockedVariant::new(n, FineLocking::new(), true)),
            OurAlgorithm => Box::new(NonBlockingVariant::new(n, FineLocking::new())),
            OurAlgorithmCoarse => Box::new(NonBlockingVariant::new(n, GlobalLocking::new())),
            OurAlgorithmCoarseHtm => Box::new(NonBlockingVariant::new(n, ElisionLocking::new())),
            ParallelCombining => Box::new(CombiningVariant::new(
                n,
                CombiningMode::ParallelReads,
                false,
            )),
            FlatCombiningNonBlockingReads => {
                Box::new(CombiningVariant::new(n, CombiningMode::FlatCombining, true))
            }
            BatchEngine => BATCH_BUILDER.get().expect(
                "Variant::BatchEngine needs dc_batch::register_variant() called first \
                 (the core crate cannot depend on dc_batch)",
            )(n),
        }
    }

    /// Whether this variant is sound on `backend`.
    ///
    /// The ETT supports all fourteen. The LCT supports only the variants
    /// whose *writers* are globally serialized (one global lock, a
    /// combiner, or the batch engine's leader): its component
    /// representative moves through transient apexes on every `access`, so
    /// the fine-grained climb–lock–recheck protocol (variants 6–8) can
    /// admit two writers into one component mid-operation, and the
    /// non-blocking protocol's published-removal handshake (variants 9–11)
    /// is keyed by a representative the LCT does not keep stable across a
    /// removal. Lock-free *reads* are fine on both — the LCT upholds the
    /// same single-sink + two-rule-bump read contract (`DESIGN.md` §12).
    pub fn supports_backend(&self, backend: ForestBackend) -> bool {
        use Variant::*;
        match backend {
            ForestBackend::Ett => true,
            ForestBackend::Lct => matches!(
                self,
                CoarseGrained
                    | CoarseRwLock
                    | CoarseNonBlockingReads
                    | CoarseHtm
                    | CoarseHtmNonBlockingReads
                    | ParallelCombining
                    | FlatCombiningNonBlockingReads
                    | BatchEngine
            ),
        }
    }

    /// The variants sound on `backend`, in paper order (extension engines
    /// included when registered for that backend).
    pub fn all_for_backend(backend: ForestBackend) -> Vec<Variant> {
        let mut variants: Vec<Variant> = Self::all()
            .iter()
            .copied()
            .filter(|v| v.supports_backend(backend))
            .collect();
        if batch_builder_registered_for(backend) {
            variants.push(Variant::BatchEngine);
        }
        variants
    }

    /// Builds an instance of this variant over `n` vertices on `backend`.
    ///
    /// Panics if the variant is not sound on the backend (check
    /// [`Variant::supports_backend`] first) or, for
    /// [`Variant::BatchEngine`], if no builder was registered for it.
    pub fn build_with(&self, n: usize, backend: ForestBackend) -> Box<dyn DynamicConnectivity> {
        use Variant::*;
        assert!(
            self.supports_backend(backend),
            "{} is not sound on the {} backend (see Variant::supports_backend)",
            self.name(),
            backend.label()
        );
        match backend {
            ForestBackend::Ett => self.build(n),
            ForestBackend::Lct => match self {
                CoarseGrained => Box::new(LockedVariant::<_, LctForest>::new_on(
                    n,
                    GlobalLocking::new(),
                    false,
                )),
                CoarseRwLock => Box::new(CoarseRwVariant::<LctForest>::new_on(n)),
                CoarseNonBlockingReads => Box::new(LockedVariant::<_, LctForest>::new_on(
                    n,
                    GlobalLocking::new(),
                    true,
                )),
                CoarseHtm => Box::new(LockedVariant::<_, LctForest>::new_on(
                    n,
                    ElisionLocking::new(),
                    false,
                )),
                CoarseHtmNonBlockingReads => Box::new(LockedVariant::<_, LctForest>::new_on(
                    n,
                    ElisionLocking::new(),
                    true,
                )),
                ParallelCombining => Box::new(CombiningVariant::<LctForest>::new_on(
                    n,
                    CombiningMode::ParallelReads,
                    false,
                )),
                FlatCombiningNonBlockingReads => Box::new(CombiningVariant::<LctForest>::new_on(
                    n,
                    CombiningMode::FlatCombining,
                    true,
                )),
                BatchEngine => BATCH_BUILDER_LCT.get().expect(
                    "Variant::BatchEngine on the lct backend needs \
                     dc_batch::register_variant() called first",
                )(n),
                _ => unreachable!("unsupported combinations are rejected above"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_thirteen_variants() {
        assert_eq!(Variant::all().len(), 13);
        let numbers: Vec<u8> = Variant::all().iter().map(|v| v.paper_number()).collect();
        assert_eq!(numbers, (1..=13).collect::<Vec<_>>());
        for v in Variant::all() {
            assert!(v.name().contains(&format!("({})", v.paper_number())));
        }
    }

    #[test]
    fn by_paper_number_inverts_paper_number() {
        for v in Variant::all() {
            assert_eq!(Variant::by_paper_number(v.paper_number()), Some(*v));
        }
        assert_eq!(Variant::by_paper_number(14), Some(Variant::BatchEngine));
        assert_eq!(Variant::by_paper_number(0), None);
        assert_eq!(Variant::by_paper_number(15), None);
    }

    #[test]
    fn batch_engine_is_an_extension_entry() {
        // The paper registry never contains the extension engine...
        assert!(!Variant::all().contains(&Variant::BatchEngine));
        assert_eq!(Variant::BatchEngine.paper_number(), 14);
        assert!(Variant::BatchEngine
            .name()
            .contains(&format!("({})", Variant::BatchEngine.paper_number())));
        // ...and all_extended only appends it once dc_batch registered its
        // builder — which cannot have happened inside the core crate's own
        // test binary (the dependency points the other way).
        if !batch_builder_registered() {
            assert_eq!(Variant::all_extended(), Variant::all().to_vec());
        } else {
            assert_eq!(Variant::all_extended().last(), Some(&Variant::BatchEngine));
        }
    }

    #[test]
    fn every_variant_supports_basic_operations() {
        for variant in Variant::all() {
            let dc = variant.build(8);
            assert_eq!(dc.num_vertices(), 8);
            assert!(!dc.connected(0, 3), "{}", variant.name());
            dc.add_edge(0, 1);
            dc.add_edge(1, 2);
            dc.add_edge(2, 3);
            assert!(dc.connected(0, 3), "{}", variant.name());
            dc.remove_edge(1, 2);
            assert!(!dc.connected(0, 3), "{}", variant.name());
            assert!(dc.connected(0, 1), "{}", variant.name());
            assert!(dc.connected(2, 3), "{}", variant.name());
        }
    }

    #[test]
    fn duplicate_and_self_loop_operations_are_noops() {
        for variant in [Variant::CoarseGrained, Variant::OurAlgorithm] {
            let dc = variant.build(4);
            dc.add_edge(1, 1);
            dc.add_edge(0, 1);
            dc.add_edge(0, 1);
            dc.add_edge(1, 0);
            assert!(dc.connected(0, 1));
            dc.remove_edge(0, 1);
            assert!(!dc.connected(0, 1), "{}", variant.name());
            dc.remove_edge(0, 1);
            dc.remove_edge(2, 3);
        }
    }

    #[test]
    fn replacement_behaviour_is_identical_across_variants() {
        for variant in Variant::all() {
            let dc = variant.build(5);
            dc.add_edge(0, 1);
            dc.add_edge(1, 2);
            dc.add_edge(0, 2);
            dc.remove_edge(0, 1);
            assert!(
                dc.connected(0, 1),
                "{} lost the replacement",
                variant.name()
            );
        }
    }
}
