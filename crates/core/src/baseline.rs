//! Baseline structures used as correctness oracles and as reference points
//! in the benchmarks.
//!
//! * [`UnionFind`] — the classic disjoint-set structure: the natural baseline
//!   for the *incremental* scenario (no deletions) and a component-counting
//!   helper for statistics.
//! * [`RecomputeOracle`] — a trivially correct (and trivially slow) dynamic
//!   connectivity implementation that stores the edge set behind a mutex and
//!   answers queries by BFS; every other implementation is tested against it.

use crate::api::{
    sequential_apply_batch, BatchConnectivity, BatchOp, DynamicConnectivity, QueryResult,
};
use dc_graph::Edge;
use parking_lot::Mutex;
use std::collections::HashSet;

/// Disjoint-set union with path compression and union by rank.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Finds the representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: u32) -> u32 {
        let p = self.parent[x as usize];
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent[x as usize] = root;
        root
    }

    /// Unions the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }
}

/// A correct-by-construction dynamic connectivity structure: a mutex-guarded
/// edge set answering queries by breadth-first search. Used as the oracle in
/// integration and stress tests.
pub struct RecomputeOracle {
    n: usize,
    edges: Mutex<HashSet<Edge>>,
}

impl RecomputeOracle {
    /// Creates the oracle over `n` vertices.
    pub fn new(n: usize) -> Self {
        RecomputeOracle {
            n,
            edges: Mutex::new(HashSet::new()),
        }
    }

    /// Number of edges currently stored.
    pub fn num_edges(&self) -> usize {
        self.edges.lock().len()
    }

    /// Size of the largest connected component divided by `n`.
    pub fn largest_component_fraction(&self) -> f64 {
        let edges = self.edges.lock();
        let mut adj = vec![Vec::new(); self.n];
        for e in edges.iter() {
            adj[e.u() as usize].push(e.v());
            adj[e.v() as usize].push(e.u());
        }
        let mut visited = vec![false; self.n];
        let mut best = 0usize;
        for start in 0..self.n {
            if visited[start] {
                continue;
            }
            let mut size = 0usize;
            let mut queue = std::collections::VecDeque::new();
            visited[start] = true;
            queue.push_back(start as u32);
            while let Some(x) = queue.pop_front() {
                size += 1;
                for &y in &adj[x as usize] {
                    if !visited[y as usize] {
                        visited[y as usize] = true;
                        queue.push_back(y);
                    }
                }
            }
            best = best.max(size);
        }
        best as f64 / self.n.max(1) as f64
    }
}

impl DynamicConnectivity for RecomputeOracle {
    fn add_edge(&self, u: u32, v: u32) {
        if u == v {
            return;
        }
        self.edges.lock().insert(Edge::new(u, v));
    }

    fn remove_edge(&self, u: u32, v: u32) {
        if u == v {
            return;
        }
        self.edges.lock().remove(&Edge::new(u, v));
    }

    fn connected(&self, u: u32, v: u32) -> bool {
        if u == v {
            return true;
        }
        let edges = self.edges.lock();
        let mut adj = vec![Vec::new(); self.n];
        for e in edges.iter() {
            adj[e.u() as usize].push(e.v());
            adj[e.v() as usize].push(e.u());
        }
        let mut visited = vec![false; self.n];
        let mut queue = std::collections::VecDeque::new();
        visited[u as usize] = true;
        queue.push_back(u);
        while let Some(x) = queue.pop_front() {
            if x == v {
                return true;
            }
            for &y in &adj[x as usize] {
                if !visited[y as usize] {
                    visited[y as usize] = true;
                    queue.push_back(y);
                }
            }
        }
        false
    }

    fn num_vertices(&self) -> usize {
        self.n
    }
}

/// The oracle applies batches strictly one operation at a time — it *is* the
/// sequential reference the batch engine's differential tests compare
/// against.
impl BatchConnectivity for RecomputeOracle {
    fn apply_batch(&self, ops: &[BatchOp]) -> Vec<QueryResult> {
        sequential_apply_batch(self, ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basic() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already joined");
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 4));
        assert_eq!(uf.num_components(), 3);
    }

    #[test]
    fn oracle_add_remove_connectivity() {
        let oracle = RecomputeOracle::new(4);
        assert!(!oracle.connected(0, 3));
        oracle.add_edge(0, 1);
        oracle.add_edge(1, 2);
        oracle.add_edge(2, 3);
        assert!(oracle.connected(0, 3));
        assert_eq!(oracle.num_edges(), 3);
        oracle.remove_edge(1, 2);
        assert!(!oracle.connected(0, 3));
        assert!((oracle.largest_component_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn union_find_agrees_with_oracle_incrementally() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let n = 32;
        let mut uf = UnionFind::new(n);
        let oracle = RecomputeOracle::new(n);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                uf.union(u, v);
                oracle.add_edge(u, v);
            }
            let a = rng.gen_range(0..n as u32);
            let b = rng.gen_range(0..n as u32);
            assert_eq!(uf.connected(a, b), oracle.connected(a, b));
        }
    }
}
