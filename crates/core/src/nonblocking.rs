//! The paper's full algorithm: lock-free non-spanning edge updates layered
//! on top of non-blocking reads and (fine- or coarse-grained) locking for
//! spanning-forest changes (Section 4.4 and Appendix C).
//!
//! Non-spanning edges — the overwhelming majority of edges in dense graphs
//! (Table 3) — are added and removed without taking any component lock.  The
//! protocol follows the paper's state machine:
//!
//! * an addition announces the edge with an `Initial` state, publishes its
//!   adjacency information, and then linearizes by a CAS to `NonSpanning`;
//! * a removal of a non-spanning edge linearizes by the CAS that deletes its
//!   `NonSpanning` state;
//! * anything touching the spanning forest falls back to the blocking path
//!   under the variant's locking scheme.
//!
//! The delicate case is an addition racing with a spanning-edge removal whose
//! replacement search could miss the new edge (paper Theorem 4.1).  The
//! handshake here is the one described in `DESIGN.md`: the removal publishes
//! a marker for its component *before* scanning and the addition checks the
//! marker *after* publishing its adjacency information, so either the scan
//! sees the edge (and helps complete or adopt it — see
//! [`crate::hdt::Hdt`]'s replacement scan), or the addition sees the marker
//! and falls back to the blocking path, waiting for the removal to finish.
//! Compared to the paper's Listing 9 the addition never *proposes* itself as
//! a replacement directly; it simply degrades to blocking in that rare
//! conflict window, which preserves linearizability and the non-blocking
//! fast path while removing a large amount of helping machinery.

use crate::api::DynamicConnectivity;
use crate::hdt::Hdt;
use crate::locking::UpdateLocking;
use crate::state::{EdgeState, Status};
use dc_graph::Edge;

/// Variants 9, 10 and 11 of the evaluation: the full algorithm,
/// parameterized by the locking scheme used for spanning-forest updates.
pub struct NonBlockingVariant<L: UpdateLocking> {
    hdt: Hdt,
    locking: L,
}

impl<L: UpdateLocking> NonBlockingVariant<L> {
    /// Creates the variant over `n` vertices.
    pub fn new(n: usize, locking: L) -> Self {
        NonBlockingVariant {
            hdt: Hdt::new(n),
            locking,
        }
    }

    /// Access to the underlying structure (tests and statistics).
    pub fn hdt(&self) -> &Hdt {
        &self.hdt
    }

    fn blocking_add(&self, edge: Edge, initial: EdgeState) {
        let (u, v) = edge.endpoints();
        self.locking.with_locked(&self.hdt, u, v, || {
            self.hdt.blocking_add_edge(edge, initial);
        });
    }
}

impl<L: UpdateLocking> DynamicConnectivity for NonBlockingVariant<L> {
    fn add_edge(&self, u: u32, v: u32) {
        if u == v {
            return;
        }
        let edge = Edge::new(u, v);
        // Announce the edge (or join a concurrent announcement of the same
        // edge; anything already past `Initial` means it is present).
        let mut initial = EdgeState::initial();
        match self.hdt.states.put_if_absent(edge, initial) {
            None => {}
            Some(st) if st.status == Status::Initial => initial = st,
            Some(_) => return,
        }
        loop {
            let current = match self.hdt.states.get(&edge) {
                Some(st) => st,
                None => return, // removed concurrently; linearize add before that removal
            };
            if current != initial {
                if current.status == Status::InProgress {
                    // A concurrent thread is inserting this edge into the
                    // spanning forest; wait for it by passing through the
                    // locks once.
                    self.locking.with_locked(&self.hdt, u, v, || {});
                }
                return;
            }
            if !self.hdt.connected(u, v) {
                // Likely a spanning edge: insert under the locks.
                self.blocking_add(edge, initial);
                return;
            }
            // Non-blocking non-spanning insertion: publish the adjacency
            // information first, then run the conflict handshake.
            self.hdt.add_nonspanning_info(0, edge);
            let root = self.hdt.forest(0).find_root_node(u);
            if self.hdt.published_removal(root).is_some() {
                // A spanning-edge removal is in flight in this component;
                // fall back to blocking so its replacement search and this
                // addition cannot miss each other.
                self.hdt.remove_nonspanning_info(0, edge);
                self.blocking_add(edge, initial);
                return;
            }
            if !self.hdt.connected(u, v) {
                // The component split while we were publishing; retract and
                // re-evaluate (the edge is now likely spanning).
                self.hdt.remove_nonspanning_info(0, edge);
                continue;
            }
            match self.hdt.states.compare_exchange(
                &edge,
                &initial,
                initial.with(Status::NonSpanning, 0),
            ) {
                Ok(()) => {
                    // Linearization point of a non-blocking non-spanning add.
                    self.hdt.record_addition(true);
                    return;
                }
                Err(_) => {
                    // A replacement search helped complete the addition or
                    // adopted the edge into the spanning forest; retract the
                    // extra information copy we published and finish.
                    self.hdt.remove_nonspanning_info(0, edge);
                    self.hdt.record_addition(true);
                    return;
                }
            }
        }
    }

    fn remove_edge(&self, u: u32, v: u32) {
        if u == v {
            return;
        }
        let edge = Edge::new(u, v);
        loop {
            let state = match self.hdt.states.get(&edge) {
                Some(st) => st,
                None => return, // absent
            };
            match state.status {
                Status::Initial => {
                    // Not added yet: linearize the removal before the
                    // concurrent addition completes (paper Listing 7).
                    return;
                }
                Status::Spanning | Status::InProgress => {
                    self.locking.with_locked(&self.hdt, u, v, || {
                        self.hdt.remove_edge_locked(u, v);
                    });
                    return;
                }
                Status::NonSpanning => {
                    // Linearize by removing the state, then retract the
                    // adjacency information.
                    if self.hdt.states.remove_if(&edge, &state).is_ok() {
                        self.hdt.remove_nonspanning_info(state.level as usize, edge);
                        self.hdt.record_removal(true);
                        return;
                    }
                    // Lost a race (promotion, replacement adoption or another
                    // removal); re-read the state and try again.
                }
            }
        }
    }

    fn connected(&self, u: u32, v: u32) -> bool {
        self.hdt.connected(u, v)
    }

    fn num_vertices(&self) -> usize {
        self.hdt.num_vertices()
    }

    fn read_hint_counters(&self) -> Option<(u64, u64)> {
        let stats = self.hdt.stats();
        Some((stats.read_hint_hits, stats.read_hint_misses))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locking::{FineLocking, GlobalLocking};

    #[test]
    fn sequential_behaviour_matches_expectations() {
        let dc = NonBlockingVariant::new(6, FineLocking::new());
        dc.add_edge(0, 1);
        dc.add_edge(1, 2);
        dc.add_edge(0, 2); // non-spanning
        assert!(dc.connected(0, 2));
        dc.remove_edge(0, 2); // non-blocking removal
        assert!(dc.connected(0, 2));
        dc.remove_edge(0, 1); // spanning removal, replacement is gone => uses (1,2)? no: (0,2) removed, so split
        assert!(!dc.connected(0, 1));
        assert!(dc.connected(1, 2));
        dc.hdt().validate();
    }

    #[test]
    fn replacement_edge_is_adopted() {
        let dc = NonBlockingVariant::new(5, GlobalLocking::new());
        dc.add_edge(0, 1);
        dc.add_edge(1, 2);
        dc.add_edge(0, 2); // cycle edge
        dc.remove_edge(1, 2); // spanning; (0,2) must replace it
        assert!(dc.connected(1, 2));
        assert!(dc.connected(0, 2));
        dc.hdt().validate();
        // Removing the remaining two edges disconnects everything.
        dc.remove_edge(0, 1);
        dc.remove_edge(0, 2);
        assert!(!dc.connected(0, 2));
        assert!(!dc.connected(1, 2));
        dc.hdt().validate();
    }

    #[test]
    fn re_adding_a_removed_edge_works() {
        let dc = NonBlockingVariant::new(4, FineLocking::new());
        for _ in 0..10 {
            dc.add_edge(0, 1);
            assert!(dc.connected(0, 1));
            dc.remove_edge(0, 1);
            assert!(!dc.connected(0, 1));
        }
        dc.hdt().validate();
    }

    #[test]
    fn duplicate_adds_do_not_corrupt_state() {
        let dc = NonBlockingVariant::new(4, FineLocking::new());
        dc.add_edge(0, 1);
        dc.add_edge(1, 2);
        dc.add_edge(0, 2);
        dc.add_edge(0, 2);
        dc.remove_edge(0, 2);
        assert!(dc.connected(0, 2));
        dc.remove_edge(0, 2); // second removal is a no-op
        assert!(dc.connected(0, 2));
        dc.hdt().validate();
    }

    #[test]
    fn stats_track_non_blocking_operations() {
        let dc = NonBlockingVariant::new(4, FineLocking::new());
        dc.add_edge(0, 1);
        dc.add_edge(1, 2);
        dc.add_edge(0, 2);
        dc.remove_edge(0, 2);
        let stats = dc.hdt().stats();
        assert_eq!(stats.additions, 3);
        assert_eq!(stats.non_spanning_additions, 1);
        assert_eq!(stats.removals, 1);
        assert_eq!(stats.non_spanning_removals, 1);
    }
}
