//! Differential tests for the batch engine: random operation batches
//! applied through `dc_batch` must answer every query exactly like the same
//! operations applied one at a time to the sequential baseline oracle.

use dc_batch::{BatchConnectivity, BatchEngine, BatchOp, DynamicConnectivity};
use dynconn::{sequential_apply_batch, RecomputeOracle, Variant};
use proptest::prelude::*;

fn batch_op(n: u32) -> impl Strategy<Value = BatchOp> {
    let vertex = 0..n;
    prop_oneof![
        (vertex.clone(), 0..n).prop_map(|(u, v)| BatchOp::Add(u, v)),
        (vertex.clone(), 0..n).prop_map(|(u, v)| BatchOp::Remove(u, v)),
        (vertex, 0..n).prop_map(|(u, v)| BatchOp::Query(u, v)),
    ]
}

/// Self-loop updates are rejected at the single-op door (`add_edge(u, u)` is
/// a no-op) and dropped by the batch preprocessor; filter them out of the
/// generated streams so both doors see identical effective operations.
fn effective(ops: Vec<BatchOp>) -> Vec<BatchOp> {
    ops.into_iter()
        .filter(|op| {
            let (u, v) = op.endpoints();
            op.is_query() || u != v
        })
        .collect()
}

fn final_states_agree(engine: &BatchEngine, oracle: &RecomputeOracle, n: u32) {
    for u in 0..n {
        for v in (u + 1)..n {
            assert_eq!(
                engine.connected(u, v),
                oracle.connected(u, v),
                "final state diverged at pair ({u}, {v})"
            );
        }
    }
    engine.hdt().validate();
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
        .. ProptestConfig::default()
    })]

    /// One bulk batch answers exactly like sequential one-at-a-time
    /// execution on the oracle.
    #[test]
    fn one_bulk_batch_matches_the_sequential_oracle(
        ops in proptest::collection::vec(batch_op(12), 1..200),
    ) {
        let ops = effective(ops);
        let engine = BatchEngine::new(12);
        let oracle = RecomputeOracle::new(12);
        assert_eq!(engine.apply_batch(&ops), oracle.apply_batch(&ops));
        final_states_agree(&engine, &oracle, 12);
    }

    /// A stream chopped into batches of varying sizes (including size 1)
    /// stays sequentially equivalent across batch boundaries.
    #[test]
    fn chained_bulk_batches_match_the_sequential_oracle(
        ops in proptest::collection::vec(batch_op(10), 1..240),
        chop in 1usize..40,
    ) {
        let ops = effective(ops);
        let engine = BatchEngine::new(10);
        let oracle = RecomputeOracle::new(10);
        for chunk in ops.chunks(chop) {
            let got = engine.apply_batch(chunk);
            let want = sequential_apply_batch(&oracle, chunk);
            assert_eq!(got, want, "batch of {} diverged", chunk.len());
        }
        final_states_agree(&engine, &oracle, 10);
    }

    /// The single-op adapter door is sequentially equivalent too (the
    /// degenerate one-op-per-batch case).
    #[test]
    fn adapter_door_matches_the_sequential_oracle(
        ops in proptest::collection::vec(batch_op(10), 1..150),
    ) {
        let ops = effective(ops);
        let engine = BatchEngine::new(10);
        let oracle = RecomputeOracle::new(10);
        for (i, op) in ops.iter().enumerate() {
            match *op {
                BatchOp::Add(u, v) => { engine.add_edge(u, v); oracle.add_edge(u, v); }
                BatchOp::Remove(u, v) => { engine.remove_edge(u, v); oracle.remove_edge(u, v); }
                BatchOp::Query(u, v) => {
                    assert_eq!(
                        engine.connected(u, v),
                        oracle.connected(u, v),
                        "query {i} ({u}, {v}) diverged",
                    );
                }
            }
        }
        final_states_agree(&engine, &oracle, 10);
    }

    /// The registry-built `Variant::BatchEngine` behaves identically to a
    /// directly constructed engine (it is the adapter under a trait object).
    #[test]
    fn registry_variant_matches_the_oracle(
        ops in proptest::collection::vec(batch_op(8), 1..100),
    ) {
        dc_batch::register_variant();
        let ops = effective(ops);
        let dc = Variant::BatchEngine.build(8);
        let oracle = RecomputeOracle::new(8);
        for op in &ops {
            match *op {
                BatchOp::Add(u, v) => { dc.add_edge(u, v); oracle.add_edge(u, v); }
                BatchOp::Remove(u, v) => { dc.remove_edge(u, v); oracle.remove_edge(u, v); }
                BatchOp::Query(u, v) => assert_eq!(dc.connected(u, v), oracle.connected(u, v)),
            }
        }
    }
}

/// Concurrent adapter traffic on disjoint vertex ranges: each thread's
/// stream is deterministic within its own component, so per-thread query
/// answers must match a per-range sequential oracle even though batches mix
/// operations of all threads.
#[test]
fn concurrent_adapter_batches_match_per_component_oracles() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let threads = 4u32;
    let span = 12u32;
    let n = (threads * span) as usize;
    let engine = std::sync::Arc::new(BatchEngine::new(n));
    std::thread::scope(|s| {
        for t in 0..threads {
            let engine = std::sync::Arc::clone(&engine);
            s.spawn(move || {
                let base = t * span;
                let oracle = RecomputeOracle::new((base + span) as usize);
                let mut rng = StdRng::seed_from_u64(0xBA7C4 + t as u64);
                let mut edges: Vec<(u32, u32)> = Vec::new();
                for step in 0..400 {
                    let roll = rng.gen_range(0..100);
                    if roll < 40 || edges.is_empty() {
                        let u = base + rng.gen_range(0..span);
                        let v = base + rng.gen_range(0..span);
                        if u != v {
                            engine.add_edge(u, v);
                            oracle.add_edge(u, v);
                            edges.push((u, v));
                        }
                    } else if roll < 70 {
                        let idx = rng.gen_range(0..edges.len());
                        let (u, v) = edges.swap_remove(idx);
                        engine.remove_edge(u, v);
                        oracle.remove_edge(u, v);
                    } else {
                        let u = base + rng.gen_range(0..span);
                        let v = base + rng.gen_range(0..span);
                        assert_eq!(
                            engine.connected(u, v),
                            oracle.connected(u, v),
                            "thread {t} step {step}: query ({u}, {v}) diverged"
                        );
                    }
                }
            });
        }
    });
    // Components of different threads never connect.
    for t in 1..threads {
        assert!(!engine.connected(0, t * span));
    }
    engine.hdt().validate();
    let stats = engine.stats();
    assert!(stats.batches > 0);
    assert!(stats.applied_updates <= stats.submitted_updates);
}
