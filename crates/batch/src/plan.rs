//! The batch preprocessor: dedup, annihilation and partitioning of a
//! batch's update operations before any of them touches the tree.
//!
//! A batch's updates are linearized *as a block* (all of them before the
//! batch's queries — see the crate documentation), so the only observable
//! effect of the update block is the net edge set it leaves behind. That
//! gives the preprocessor three licenses:
//!
//! 1. **Dedup** — several operations on the same edge collapse to the last
//!    one: the net intent of `[add e, remove e, add e]` is "e present".
//! 2. **Annihilation** — a net intent that matches the structure's current
//!    state is dropped entirely. The headline case: an insert+delete pair of
//!    an absent edge cancels to nothing and never touches the tree; dually,
//!    re-adding a present edge costs zero.
//! 3. **Partitioning** — the surviving intents are order-free (one net
//!    operation per distinct edge), so they are partitioned into an
//!    additions slice and a removals slice and applied adds-first (see
//!    `Hdt::apply_compacted_batch_locked` for why that order is the cheap
//!    one).
//!
//! The plan is leader-owned scratch state, reused across batches: `record`
//! is O(1) amortized per operation, `compact_into` is one pass over the
//! distinct edges.

use dc_graph::Edge;
use dc_sync::FxBuildHasher;
use std::collections::HashMap;

/// Accumulates the update operations of one batch as net per-edge intents.
pub struct UpdatePlan {
    /// Net intent per distinct edge, in first-touch order (`true` = the edge
    /// must be present after the batch).
    intents: Vec<(Edge, bool)>,
    /// Edge -> index into `intents`.
    index: HashMap<Edge, usize, FxBuildHasher>,
    /// Update operations recorded since the last [`UpdatePlan::clear`]
    /// (including self-loops and duplicates — the compaction denominator).
    submitted: usize,
}

impl UpdatePlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        UpdatePlan {
            intents: Vec::new(),
            index: HashMap::default(),
            submitted: 0,
        }
    }

    /// Resets the plan for the next batch, keeping allocations.
    pub fn clear(&mut self) {
        self.intents.clear();
        self.index.clear();
        self.submitted = 0;
    }

    /// Returns `true` if no update was recorded since the last clear.
    pub fn is_empty(&self) -> bool {
        self.submitted == 0
    }

    /// Number of update operations recorded (the compaction denominator).
    pub fn submitted(&self) -> usize {
        self.submitted
    }

    /// Number of distinct edges currently carrying an intent.
    pub fn distinct_edges(&self) -> usize {
        self.intents.len()
    }

    /// Records one update operation (`add == true` for an insertion). A
    /// later operation on the same edge overwrites the earlier intent —
    /// that is the dedup. Self-loops are single-op no-ops and are dropped
    /// immediately.
    pub fn record(&mut self, add: bool, u: u32, v: u32) {
        self.submitted += 1;
        if u == v {
            return;
        }
        let edge = Edge::new(u, v);
        match self.index.get(&edge) {
            Some(&i) => self.intents[i].1 = add,
            None => {
                self.index.insert(edge, self.intents.len());
                self.intents.push((edge, add));
            }
        }
    }

    /// Annihilates and partitions the accumulated intents: every intent that
    /// matches the current presence reported by `has_edge` is dropped, the
    /// survivors are appended to `adds` / `removes`. Returns the number of
    /// surviving updates.
    pub fn compact_into(
        &self,
        mut has_edge: impl FnMut(Edge) -> bool,
        adds: &mut Vec<Edge>,
        removes: &mut Vec<Edge>,
    ) -> usize {
        let mut survivors = 0;
        for &(edge, present) in &self.intents {
            if has_edge(edge) == present {
                continue; // annihilated: the structure is already there
            }
            survivors += 1;
            if present {
                adds.push(edge);
            } else {
                removes.push(edge);
            }
        }
        survivors
    }
}

impl Default for UpdatePlan {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn compact(plan: &UpdatePlan, present: &HashSet<Edge>) -> (Vec<Edge>, Vec<Edge>, usize) {
        let (mut adds, mut removes) = (Vec::new(), Vec::new());
        let n = plan.compact_into(|e| present.contains(&e), &mut adds, &mut removes);
        (adds, removes, n)
    }

    #[test]
    fn insert_delete_pair_annihilates() {
        let mut plan = UpdatePlan::new();
        plan.record(true, 0, 1);
        plan.record(false, 1, 0); // same edge, either orientation
        assert_eq!(plan.submitted(), 2);
        assert_eq!(plan.distinct_edges(), 1);
        let (adds, removes, survivors) = compact(&plan, &HashSet::new());
        assert!(adds.is_empty() && removes.is_empty());
        assert_eq!(survivors, 0, "add+remove of an absent edge is nothing");
    }

    #[test]
    fn delete_insert_pair_on_present_edge_annihilates() {
        let mut plan = UpdatePlan::new();
        plan.record(false, 0, 1);
        plan.record(true, 0, 1);
        let present: HashSet<Edge> = [Edge::new(0, 1)].into_iter().collect();
        let (adds, removes, survivors) = compact(&plan, &present);
        assert!(adds.is_empty() && removes.is_empty());
        assert_eq!(survivors, 0);
    }

    #[test]
    fn last_intent_wins_and_partitions() {
        let mut plan = UpdatePlan::new();
        plan.record(true, 0, 1); // stays: absent -> present
        plan.record(false, 2, 3); // stays: present -> absent
        plan.record(true, 4, 5);
        plan.record(false, 4, 5);
        plan.record(true, 4, 5); // net add
        let present: HashSet<Edge> = [Edge::new(2, 3)].into_iter().collect();
        let (adds, removes, survivors) = compact(&plan, &present);
        assert_eq!(adds, vec![Edge::new(0, 1), Edge::new(4, 5)]);
        assert_eq!(removes, vec![Edge::new(2, 3)]);
        assert_eq!(survivors, 3);
        assert_eq!(plan.submitted(), 5);
    }

    #[test]
    fn self_loops_and_redundant_ops_are_dropped() {
        let mut plan = UpdatePlan::new();
        plan.record(true, 7, 7); // self-loop
        plan.record(true, 0, 1); // already present
        plan.record(false, 2, 3); // already absent
        assert_eq!(plan.submitted(), 3);
        let present: HashSet<Edge> = [Edge::new(0, 1)].into_iter().collect();
        let (adds, removes, survivors) = compact(&plan, &present);
        assert!(adds.is_empty() && removes.is_empty());
        assert_eq!(survivors, 0);
    }

    #[test]
    fn clear_keeps_the_plan_reusable() {
        let mut plan = UpdatePlan::new();
        plan.record(true, 0, 1);
        plan.clear();
        assert!(plan.is_empty());
        assert_eq!(plan.distinct_edges(), 0);
        plan.record(false, 0, 1);
        let (adds, removes, _) = compact(&plan, &[Edge::new(0, 1)].into_iter().collect());
        assert!(adds.is_empty());
        assert_eq!(removes, vec![Edge::new(0, 1)]);
    }
}
