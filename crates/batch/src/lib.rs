//! # dc_batch — the batch-parallel operation engine
//!
//! The paper's thirteen variants all serve one operation at a time; under
//! heavy traffic the synchronized HDT is the bottleneck no matter how fast
//! each individual operation is. This crate promotes the flat-combining idea
//! (paper variants 12/13) from a lock-handoff trick into a first-class
//! execution subsystem that *amortizes*:
//!
//! 1. **Sharded intake** ([`dc_sync::IntakeArray`]) — per-thread padded
//!    slots collect concurrently submitted `add_edge` / `remove_edge` /
//!    `connected` operations into batches.
//! 2. **Annihilation** ([`plan::UpdatePlan`]) — before any tree work,
//!    operations on the same edge dedup to one net intent, insert+delete
//!    pairs cancel outright, and intents matching the current state are
//!    dropped; repeated queries coalesce onto one shared read.
//! 3. **Combined-pass execution** ([`engine::BatchEngine`]) — the surviving
//!    updates go through the HDT in one pass (adds first, then removals),
//!    under a single leader-lock acquisition for the whole batch.
//! 4. **Snapshot-consistent parallel queries** — the batch's queries are
//!    answered against the resulting consistent state: adapter queries run
//!    on their owners' threads (results fanned back through the intake
//!    slots), bulk query runs fan out over scoped threads; both use the
//!    HDT's lock-free read protocol.
//!
//! Two public doors:
//!
//! * [`BatchConnectivity::apply_batch`] — explicit bulk submission for
//!   bulk-load / offline / bursty-client use, with sequential-equivalence
//!   semantics;
//! * the [`DynamicConnectivity`] adapter — every existing single-op bench
//!   scenario and test runs against the engine unchanged (it also registers
//!   as `Variant::BatchEngine`, number 14, via [`register_variant`]).
//!
//! See `DESIGN.md` §5 for the batch lifecycle and the linearizability
//! argument (batch boundaries as linearization points).
//!
//! ```
//! use dc_batch::{BatchConnectivity, BatchEngine, BatchOp};
//!
//! let engine = BatchEngine::new(8);
//! let answers = engine.apply_batch(&[
//!     BatchOp::Add(0, 1),
//!     BatchOp::Add(1, 2),
//!     BatchOp::Query(0, 2),   // answered as of this point: connected
//!     BatchOp::Remove(1, 2),
//!     BatchOp::Query(0, 2),   // now disconnected
//! ]);
//! assert_eq!(answers.len(), 2);
//! assert!(answers[0].connected);
//! assert!(!answers[1].connected);
//! ```

pub mod engine;
pub mod plan;

pub use engine::{BatchEngine, BatchStats, CommitHook, EngineError};
pub use plan::UpdatePlan;

// The wait policy is configured through the engine but lives with the wait
// ladder in `dc_sync`; re-export it so callers need not name both crates.
pub use dc_sync::WaitPolicy;

// Re-export the operation vocabulary so users of this crate need not also
// name `dynconn` for the common path.
pub use dynconn::{BatchConnectivity, BatchOp, DynamicConnectivity, QueryResult};

/// Registers [`BatchEngine`] as `Variant::BatchEngine` (number 14) in the
/// core variant registry — once per forest backend, so registry-driven
/// harnesses (benches, examples, differential tests) can build it by name
/// on either the ETT or the LCT via `Variant::build_with`. Idempotent.
pub fn register_variant() {
    dynconn::variants::register_batch_builder(|n| Box::new(BatchEngine::new(n)));
    dynconn::variants::register_batch_builder_lct(|n| {
        Box::new(BatchEngine::<dc_ett::LctForest>::new_on(n))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynconn::Variant;

    #[test]
    fn registration_makes_variant_14_buildable() {
        register_variant();
        register_variant(); // idempotent
        assert!(dynconn::variants::batch_builder_registered());
        let all = Variant::all_extended();
        assert_eq!(all.len(), 14);
        assert_eq!(all.last(), Some(&Variant::BatchEngine));
        let dc = Variant::BatchEngine.build(8);
        assert_eq!(dc.num_vertices(), 8);
        dc.add_edge(0, 1);
        dc.add_edge(1, 2);
        assert!(dc.connected(0, 2));
        dc.remove_edge(1, 2);
        assert!(!dc.connected(0, 2));
    }

    #[test]
    fn every_extended_variant_supports_basic_operations() {
        register_variant();
        for variant in Variant::all_extended() {
            let dc = variant.build(8);
            assert!(!dc.connected(0, 3), "{}", variant.name());
            dc.add_edge(0, 1);
            dc.add_edge(1, 2);
            dc.add_edge(2, 3);
            assert!(dc.connected(0, 3), "{}", variant.name());
            dc.remove_edge(1, 2);
            assert!(!dc.connected(0, 3), "{}", variant.name());
        }
    }
}
