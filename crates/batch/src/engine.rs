//! The batch execution engine: intake → annihilation → combined-pass
//! execution → fan-out.
//!
//! One [`BatchEngine`] owns an [`Hdt`] and is its only writer. Operations
//! reach the structure through two doors:
//!
//! * **the sharded single-op adapter** ([`DynamicConnectivity`]): each
//!   calling thread publishes its operation in its private padded intake
//!   slot ([`dc_sync::IntakeArray`]) and spins; whichever waiter wins the
//!   leader lock drains *all* published operations into one batch, runs the
//!   preprocessor ([`crate::plan::UpdatePlan`]) to dedup/annihilate the
//!   updates, applies the compacted update set through the HDT in one
//!   combined pass, completes the update slots, and hands every query slot
//!   back to its owner — the queries then execute **in parallel on their
//!   own threads** against the consistent post-batch state, through the
//!   HDT's lock-free read protocol.
//! * **the bulk door** ([`BatchConnectivity::apply_batch`]): a caller ships
//!   a whole operation slice at once. The engine splits it into maximal
//!   update runs and query runs, compacts and applies each update run as
//!   one combined pass, and answers each query run — duplicates coalesced,
//!   large runs fanned out over a scoped thread pool — against the state at
//!   that point of the batch. Answers are exactly those of sequential
//!   one-at-a-time execution.
//!
//! # Linearizability
//!
//! Batch boundaries are the linearization points. For the adapter: every
//! operation in a drained batch was pending (its caller blocked) when the
//! leader claimed it, so all of them are pairwise concurrent and the engine
//! may order them freely; it linearizes the whole update block at the
//! instant the combined pass completes, and each query at its own lock-free
//! read (which happens after that instant on the owner's thread, hence
//! observes the batch it rode in). An operation submitted *after* a query
//! completed lands in a later batch and therefore after that query's
//! linearization point — real-time order is preserved. For the bulk door the
//! (stronger) sequential-equivalence contract of
//! [`BatchConnectivity::apply_batch`] holds by construction: updates between
//! two queries only ever collapse to their net edge set, which is the only
//! thing the next query run can observe. See `DESIGN.md` §5 for the full
//! argument.
//!
//! # Fault containment
//!
//! Batch leadership is an unwind boundary. A panic anywhere on the leader's
//! drain → plan → apply → commit-hook path (a structural invariant trip, an
//! exhausted arena mid-removal, a chaos injection from `dc_faults`) does
//! *not* propagate into the other waiters' stacks or leave them spinning on
//! claimed slots: the panicking leadership transitions the engine to a
//! terminal **poisoned** state, sweeps the intake array releasing every
//! open slot with [`EngineError::Poisoned`], dumps the `dc_obs` flight
//! recorder, and only then gives up the leader lock. From that point every
//! door fails fast — the `try_*` doors with a typed error, the
//! [`DynamicConnectivity`] adapter by panicking on the caller's own thread.
//! Recovery is a *rebuild from durable state* (`dc_durable`), never an
//! in-place resume: the in-memory structure is assumed arbitrarily damaged.
//!
//! Waiting is bounded, not faith-based: the adapter's intake wait runs a
//! spin → yield → park ladder ([`dc_sync::WaitPolicy`]) whose optional
//! deadline turns a wedged leader into [`EngineError::Timeout`] on the
//! waiter's thread — the publication is withdrawn race-free
//! ([`dc_sync::IntakeArray::retract`]) so no later batch can observe a
//! half-abandoned operation. See `DESIGN.md` §13 for the failure model.

use crate::plan::UpdatePlan;
use dc_ett::{DynamicForest, EulerForest};
use dc_faults::InjectionPoint;
use dc_graph::Edge;
use dc_sync::{waitstats, IntakeArray, RawSpinLock, SlotPoll, WaitLadder, WaitPolicy, WaitStep};
use dynconn::{BatchConnectivity, BatchOp, DynamicConnectivity, Hdt, QueryResult};
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Typed failure of the engine's fallible doors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// A batch leader panicked and the engine is permanently poisoned: the
    /// in-memory structure may be arbitrarily damaged, so every subsequent
    /// operation is refused. Recover by rebuilding from durable state (the
    /// `dc_durable` layer's recovery door) — the poison message is kept in
    /// [`BatchEngine::poison_note`] for the post-mortem, and the flight
    /// recorder was dumped at the moment of the panic.
    Poisoned,
    /// The calling thread's bounded intake wait ([`WaitPolicy::max_wait`])
    /// expired before any leader resolved its operation. The operation was
    /// withdrawn and had no effect; the caller may retry. Never returned
    /// under the default (unbounded) policy.
    Timeout,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Poisoned => {
                write!(
                    f,
                    "engine poisoned by a leader panic; rebuild from durable state"
                )
            }
            EngineError::Timeout => write!(f, "bounded intake wait expired"),
        }
    }
}

impl std::error::Error for EngineError {}

const STATE_RUNNING: u8 = 0;
const STATE_POISONED: u8 = 1;

/// Best-effort text of a panic payload (`panic!` with a message covers the
/// `&str` / `String` cases; anything else stays opaque).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "non-string panic payload"
    }
}

/// Minimum number of distinct query pairs each fanned-out thread must
/// receive: a scoped-thread spawn costs more than a few hundred lock-free
/// reads, so runs fan out only when every spawned thread gets at least this
/// much work.
const PARALLEL_QUERY_CHUNK: usize = 256;

/// A commit hook, invoked once per non-empty compacted batch, on the leader
/// thread, immediately after the batch was applied and *before* any of the
/// batch's callers are released — batch boundaries are the linearization
/// points (DESIGN.md §5), so this is exactly the place a write-ahead log
/// must observe the update stream. The hook receives the structure (already
/// reflecting the batch; write-quiescent for the duration of the call — the
/// durable layer serializes checkpoints through it) and the compacted
/// `adds` / `removes` slices that were applied. Generic over the forest
/// backend, defaulting to the ETT like the engine itself.
pub type CommitHook<F = EulerForest> = Box<dyn Fn(&Hdt<F>, &[Edge], &[Edge]) + Send + Sync>;

/// Operation counters of a [`BatchEngine`].
#[derive(Debug, Default)]
struct EngineCounters {
    /// Batches drained from the intake (adapter door).
    batches: AtomicU64,
    /// Bulk batches applied through `apply_batch`.
    bulk_batches: AtomicU64,
    /// Update operations submitted (before preprocessing).
    submitted_updates: AtomicU64,
    /// Updates that survived dedup + annihilation and were applied.
    applied_updates: AtomicU64,
    /// Query operations submitted.
    submitted_queries: AtomicU64,
    /// Duplicate queries answered by one shared read (bulk door).
    coalesced_queries: AtomicU64,
    /// Additions the forest refused for capacity (surfaced through
    /// [`BatchEngine::drain_rejected`], excluded from the commit hook).
    rejected_updates: AtomicU64,
}

/// A point-in-time copy of the engine counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchStats {
    /// Batches drained from the intake (adapter door).
    pub batches: u64,
    /// Bulk batches applied through `apply_batch`.
    pub bulk_batches: u64,
    /// Update operations submitted (before preprocessing).
    pub submitted_updates: u64,
    /// Updates that survived dedup + annihilation and were applied.
    pub applied_updates: u64,
    /// Query operations submitted.
    pub submitted_queries: u64,
    /// Duplicate queries answered by one shared read (bulk door).
    pub coalesced_queries: u64,
    /// Additions the forest refused for capacity (see
    /// [`BatchEngine::drain_rejected`]).
    pub rejected_updates: u64,
}

impl BatchStats {
    /// Applied over submitted updates — strictly below 1.0 whenever the
    /// preprocessor cancelled work before it reached the tree.
    pub fn compaction_ratio(&self) -> f64 {
        if self.submitted_updates == 0 {
            1.0
        } else {
            self.applied_updates as f64 / self.submitted_updates as f64
        }
    }
}

/// Leader-owned scratch buffers, reused across batches. Only ever touched
/// while the leader lock is held.
#[derive(Default)]
struct Scratch {
    plan: UpdatePlan,
    update_slots: Vec<usize>,
    query_slots: Vec<usize>,
    adds: Vec<Edge>,
    removes: Vec<Edge>,
    rejected: Vec<Edge>,
    queries: QueryScratch,
}

/// Reusable buffers of the bulk door's query-run machinery (accumulated
/// run, coalescing table, shared answers).
#[derive(Default)]
struct QueryScratch {
    run: Vec<(usize, u32, u32)>,
    unique: Vec<(u32, u32)>,
    refs: Vec<usize>,
    answers: Vec<bool>,
    pair_index: HashMap<(u32, u32), usize>,
}

/// The batch-parallel dynamic connectivity engine, generic over the
/// [`DynamicForest`] backend (ETT by default). See the module docs.
pub struct BatchEngine<F: DynamicForest = EulerForest> {
    hdt: Hdt<F>,
    intake: IntakeArray<BatchOp, Result<(), EngineError>>,
    leader: RawSpinLock,
    scratch: UnsafeCell<Scratch>,
    counters: EngineCounters,
    query_threads: usize,
    commit_hook: Option<CommitHook<F>>,
    /// `STATE_RUNNING` until a leader panics, then `STATE_POISONED` forever.
    state: AtomicU8,
    /// The first poisoning panic's message (later panics don't overwrite).
    poison_note: Mutex<Option<String>>,
    /// Capacity-rejected additions awaiting [`BatchEngine::drain_rejected`].
    rejected: Mutex<Vec<Edge>>,
    /// How adapter callers wait on their intake slots.
    wait_policy: WaitPolicy,
}

// SAFETY: `scratch` is only accessed while `leader` is held (the bulk door
// takes it blocking, the adapter's batch loop via try_lock); everything else
// is internally synchronized (`Hdt` is Sync, the intake array orders its
// slot accesses through the state atomics).
unsafe impl<F: DynamicForest> Sync for BatchEngine<F> {}
unsafe impl<F: DynamicForest> Send for BatchEngine<F> {}

impl BatchEngine {
    /// Creates an ETT-backed engine over `n` vertices with the default
    /// intake capacity and one query-fan-out thread per host hardware
    /// thread. (Pinned to the default backend so `BatchEngine::new(8)`
    /// keeps inferring; use [`BatchEngine::new_on`] for other backends.)
    pub fn new(n: usize) -> Self {
        Self::new_on(n)
    }

    /// Creates an ETT-backed engine with explicit intake capacity (max
    /// participating threads) and bulk-query fan-out width (`1` answers
    /// every query run inline).
    pub fn with_options(n: usize, intake_capacity: usize, query_threads: usize) -> Self {
        Self::with_options_on(n, intake_capacity, query_threads)
    }
}

impl<F: DynamicForest> BatchEngine<F> {
    /// Creates an engine over `n` vertices on backend `F` with the default
    /// intake capacity and one query-fan-out thread per host hardware
    /// thread.
    pub fn new_on(n: usize) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        Self::with_options_on(
            n,
            IntakeArray::<BatchOp, Result<(), EngineError>>::DEFAULT_SLOTS,
            threads,
        )
    }

    /// Creates an engine on backend `F` with explicit intake capacity (max
    /// participating threads) and bulk-query fan-out width (`1` answers
    /// every query run inline).
    pub fn with_options_on(n: usize, intake_capacity: usize, query_threads: usize) -> Self {
        Self::from_hdt(Hdt::new_on(n), intake_capacity, query_threads)
    }

    /// Wraps an engine around an existing structure — the recovery door:
    /// `dc_durable` rebuilds an [`Hdt`] from a checkpoint plus the WAL tail
    /// and then hands it to the engine, which becomes its single writer.
    pub fn from_hdt(hdt: Hdt<F>, intake_capacity: usize, query_threads: usize) -> Self {
        BatchEngine {
            hdt,
            intake: IntakeArray::with_capacity(intake_capacity),
            leader: RawSpinLock::new(),
            scratch: UnsafeCell::new(Scratch::default()),
            counters: EngineCounters::default(),
            query_threads: query_threads.max(1),
            commit_hook: None,
            state: AtomicU8::new(STATE_RUNNING),
            poison_note: Mutex::new(None),
            rejected: Mutex::new(Vec::new()),
            wait_policy: WaitPolicy::default(),
        }
    }

    /// Sets how adapter callers wait on their intake slots (spin / yield
    /// budget, park backoff, optional deadline — see [`WaitPolicy`]). Takes
    /// `&mut self` like [`BatchEngine::set_commit_hook`]: the policy must be
    /// in place before the engine is shared.
    pub fn set_wait_policy(&mut self, policy: WaitPolicy) {
        self.wait_policy = policy;
    }

    /// Installs the commit hook (see [`CommitHook`]). Takes `&mut self` on
    /// purpose: the hook must be in place before the engine is shared, so
    /// no batch can ever slip past the log unobserved.
    pub fn set_commit_hook(&mut self, hook: CommitHook<F>) {
        self.commit_hook = Some(hook);
    }

    /// The underlying structure (tests, statistics, lock-free reads).
    pub fn hdt(&self) -> &Hdt<F> {
        &self.hdt
    }

    /// Runs `f` with the leader lock held: the structure is write-quiescent
    /// for the duration (adapter and bulk batches wait it out; lock-free
    /// readers proceed). This is the manual-checkpoint door used by
    /// `dc_durable` — and any other caller that needs a consistent walk of
    /// the live structure.
    pub fn with_exclusive<R>(&self, f: impl FnOnce(&Hdt<F>) -> R) -> R {
        self.leader.lock();
        let result = f(&self.hdt);
        self.leader.unlock();
        result
    }

    /// Snapshot of the engine counters.
    pub fn stats(&self) -> BatchStats {
        BatchStats {
            batches: self.counters.batches.load(Ordering::Relaxed),
            bulk_batches: self.counters.bulk_batches.load(Ordering::Relaxed),
            submitted_updates: self.counters.submitted_updates.load(Ordering::Relaxed),
            applied_updates: self.counters.applied_updates.load(Ordering::Relaxed),
            submitted_queries: self.counters.submitted_queries.load(Ordering::Relaxed),
            coalesced_queries: self.counters.coalesced_queries.load(Ordering::Relaxed),
            rejected_updates: self.counters.rejected_updates.load(Ordering::Relaxed),
        }
    }

    // ----- fault containment -------------------------------------------------

    /// Whether a leader panic poisoned the engine (see [`EngineError::Poisoned`]).
    pub fn is_poisoned(&self) -> bool {
        self.state.load(Ordering::Acquire) == STATE_POISONED
    }

    /// The first poisoning panic's message, if the engine is poisoned.
    pub fn poison_note(&self) -> Option<String> {
        self.poison_note
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Drains the additions the forest refused for capacity since the last
    /// call. A rejected addition was *not* applied and *not* reported to the
    /// commit hook — callers that must not lose writes re-submit them after
    /// raising capacity (or route them elsewhere). Tallied on
    /// [`BatchStats::rejected_updates`] and
    /// [`dc_obs::Counter::CapacityRejections`].
    pub fn drain_rejected(&self) -> Vec<Edge> {
        std::mem::take(&mut *self.rejected.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Terminal transition after a leader panic. Runs under the leader lock
    /// the panicking leadership still holds: records the note, flips the
    /// state, releases every open intake slot with
    /// [`EngineError::Poisoned`], and dumps the flight recorder for the
    /// post-mortem before the caller gives up the lock.
    fn poison(&self, door: &str, payload: &(dyn std::any::Any + Send)) {
        let note = format!("{door}: {}", panic_message(payload));
        if self.state.swap(STATE_POISONED, Ordering::AcqRel) == STATE_RUNNING {
            *self.poison_note.lock().unwrap_or_else(|e| e.into_inner()) = Some(note);
        }
        // Release everyone *after* the state flip: a waiter that misses the
        // sweep (publishes later) observes the flag and retracts itself.
        let released = self.intake.sweep_open(|| Err(EngineError::Poisoned));
        dc_obs::counter_add(dc_obs::Counter::EnginePoisons, 1);
        dc_obs::gauge_set(dc_obs::Gauge::EnginePoisoned, 1);
        dc_obs::event(
            dc_obs::EventKind::EnginePoison,
            self.counters.batches.load(Ordering::Relaxed)
                + self.counters.bulk_batches.load(Ordering::Relaxed),
            released as u64,
        );
        dc_obs::auto_dump("engine-poisoned");
    }

    // ----- the single-op adapter door ----------------------------------------

    /// Publishes one operation and blocks until it is resolved, combining it
    /// with every concurrently published operation. Returns the answer for
    /// queries, `None` for updates; fails fast on a poisoned engine and
    /// types out an expired bounded wait.
    fn execute_op(&self, op: BatchOp) -> Result<Option<bool>, EngineError> {
        if self.is_poisoned() {
            return Err(EngineError::Poisoned);
        }
        dc_faults::maybe_stall(InjectionPoint::IntakeStall);
        let idx = self.intake.publish(op);
        // Time blocked in the intake (waiting for a leader to resolve the
        // slot) counts as lock-wait for the active-time-rate statistic;
        // leading a batch is work, so the timer pauses around it.
        let mut timer = waitstats::WaitTimer::start();
        let mut ladder = WaitLadder::new(self.wait_policy);
        loop {
            match self.intake.poll(idx) {
                SlotPoll::Done(res) => {
                    timer.finish();
                    return res.map(|()| None);
                }
                SlotPoll::HandedBack(op) => {
                    timer.finish();
                    // The leader applied this batch's updates and handed the
                    // query back: answer it here, in parallel with the rest
                    // of the batch's queries, against the post-batch state.
                    let (u, v) = op.endpoints();
                    return Ok(Some(self.hdt.connected(u, v)));
                }
                SlotPoll::Pending if self.is_poisoned() => {
                    // Withdraw: either nobody ever saw the op (retract wins)
                    // or a leadership claimed it, in which case the poison
                    // sweep resolves the slot imminently — keep polling.
                    if self.intake.retract(idx).is_some() {
                        timer.finish();
                        return Err(EngineError::Poisoned);
                    }
                    std::hint::spin_loop();
                }
                SlotPoll::Pending => {
                    if self.leader.try_lock() {
                        timer.finish();
                        self.lead_adapter_batch();
                        self.leader.unlock();
                        timer = waitstats::WaitTimer::start();
                        // Leading was forward progress: restart the ladder's
                        // cheap phase (the deadline, if any, keeps running).
                        ladder.reset_phase();
                    } else {
                        match ladder.step() {
                            WaitStep::Continue => {}
                            WaitStep::TimedOut => {
                                if self.intake.retract(idx).is_some() {
                                    timer.finish();
                                    dc_obs::counter_add(dc_obs::Counter::WaitTimeouts, 1);
                                    return Err(EngineError::Timeout);
                                }
                                // A leader claimed the op after the deadline
                                // expired; it resolves the slot imminently.
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
            }
        }
    }

    /// One adapter leadership: runs the batch behind the unwind boundary,
    /// poisoning the engine if it panics. Must hold the leader lock; never
    /// unwinds.
    fn lead_adapter_batch(&self) {
        if self.is_poisoned() {
            // A previous leadership poisoned the engine; sweep anything
            // published since (late publishers also self-retract, but the
            // sweep is cheap and releases them without waiting for their
            // next poll).
            self.intake.sweep_open(|| Err(EngineError::Poisoned));
            return;
        }
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| self.run_adapter_batch())) {
            self.poison("adapter batch leader panicked", payload.as_ref());
        }
    }

    /// Drains and executes one adapter batch. Must hold the leader lock.
    fn run_adapter_batch(&self) {
        // SAFETY: leader lock held — exclusive access to the scratch state.
        let scratch = unsafe { &mut *self.scratch.get() };
        scratch.update_slots.clear();
        scratch.query_slots.clear();
        scratch.plan.clear();

        let update_slots = &mut scratch.update_slots;
        let query_slots = &mut scratch.query_slots;
        self.intake.claim_pending(|idx, op| {
            if op.is_query() {
                query_slots.push(idx);
            } else {
                update_slots.push(idx);
            }
        });
        if scratch.update_slots.is_empty() && scratch.query_slots.is_empty() {
            return;
        }
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        let claimed = (scratch.update_slots.len() + scratch.query_slots.len()) as u64;
        dc_obs::counter_add(dc_obs::Counter::BatchesDrained, 1);
        dc_obs::gauge_set(dc_obs::Gauge::IntakeDepth, claimed);
        dc_obs::event(dc_obs::EventKind::BatchBegin, claimed, 0);

        // Preprocess: move the update ops out of their slots into the plan.
        for &idx in &scratch.update_slots {
            match self.intake.take(idx) {
                BatchOp::Add(u, v) => scratch.plan.record(true, u, v),
                BatchOp::Remove(u, v) => scratch.plan.record(false, u, v),
                BatchOp::Query(_, _) => unreachable!("queries are never in the update list"),
            }
        }
        self.flush_plan(
            &mut scratch.plan,
            &mut scratch.adds,
            &mut scratch.removes,
            &mut scratch.rejected,
        );

        // Fan out: updates are done, wake their callers. (A capacity-
        // rejected addition still completes with `Ok` — per-edge rejection
        // is reported out-of-band through `drain_rejected`, because the
        // owner of an annihilated duplicate can't be told apart from the
        // owner of the rejected survivor.)
        for &idx in &scratch.update_slots {
            self.intake.complete(idx, Ok(()));
        }
        // ...and hand every query back, to run on its owner's thread against
        // the consistent post-batch state (including the leader's own query,
        // which it picks up from its slot right after returning from here).
        self.counters
            .submitted_queries
            .fetch_add(scratch.query_slots.len() as u64, Ordering::Relaxed);
        for &idx in &scratch.query_slots {
            self.intake.hand_back(idx);
        }
    }

    /// Compacts `plan` and applies the surviving updates in one combined
    /// pass. Must hold the leader lock (the single-writer role).
    ///
    /// Additions the forest refuses for capacity land in `rejected` (and
    /// the engine's [`BatchEngine::drain_rejected`] buffer) and are filtered
    /// out of `adds` *before* the commit hook runs, so the durable log only
    /// ever records updates that actually applied. A panic anywhere in here
    /// (including the two chaos injection points) unwinds into the calling
    /// leadership's boundary and poisons the engine.
    fn flush_plan(
        &self,
        plan: &mut UpdatePlan,
        adds: &mut Vec<Edge>,
        removes: &mut Vec<Edge>,
        rejected: &mut Vec<Edge>,
    ) {
        if plan.is_empty() {
            return;
        }
        adds.clear();
        removes.clear();
        rejected.clear();
        let _span = dc_obs::span(dc_obs::SpanId::BatchFlush);
        let hdt = &self.hdt;
        let survivors = plan.compact_into(|e| hdt.has_edge(e.u(), e.v()), adds, removes);
        self.counters
            .submitted_updates
            .fetch_add(plan.submitted() as u64, Ordering::Relaxed);
        dc_obs::event(
            dc_obs::EventKind::BatchFlush,
            survivors as u64,
            (plan.submitted() - survivors) as u64,
        );
        // Chaos: die with the batch compacted but *nothing* applied — the
        // whole batch must be invisible to both the structure and the log.
        if dc_faults::should_inject(InjectionPoint::LeaderPanicBeforeApply) {
            panic!("chaos injection: leader panic before apply");
        }
        self.hdt
            .try_apply_compacted_batch_locked(adds, removes, rejected);
        if !rejected.is_empty() {
            self.counters
                .rejected_updates
                .fetch_add(rejected.len() as u64, Ordering::Relaxed);
            adds.retain(|e| !rejected.contains(e));
            self.rejected
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend_from_slice(rejected);
        }
        let applied = survivors - rejected.len();
        self.counters
            .applied_updates
            .fetch_add(applied as u64, Ordering::Relaxed);
        dc_obs::counter_add(dc_obs::Counter::BatchUpdatesApplied, applied as u64);
        // The batch is applied but none of its callers have been released:
        // the commit hook observes every batch at its linearization point,
        // with the structure quiescent. Fully annihilated (or fully
        // rejected) batches changed nothing and are invisible to recovery,
        // so they are not reported.
        if !adds.is_empty() || !removes.is_empty() {
            if let Some(hook) = &self.commit_hook {
                hook(&self.hdt, adds, removes);
            }
            // Chaos: die with the batch applied *and* logged — recovery must
            // replay it; the callers were never acked.
            if dc_faults::should_inject(InjectionPoint::LeaderPanicAfterCommit) {
                panic!("chaos injection: leader panic after commit hook");
            }
        }
        plan.clear();
    }

    // ----- the bulk door ------------------------------------------------------

    /// Answers one accumulated query run (`q.run`) against the current
    /// (update-quiescent) state: short runs go straight to the lock-free
    /// read, longer runs coalesce duplicates onto one shared read, and runs
    /// large enough to amortize a spawn fan out across scoped threads.
    fn answer_query_run(&self, q: &mut QueryScratch, results: &mut Vec<QueryResult>) {
        if q.run.is_empty() {
            return;
        }
        self.counters
            .submitted_queries
            .fetch_add(q.run.len() as u64, Ordering::Relaxed);

        // Short runs (the common case when updates and queries alternate):
        // the coalescing table costs more than it saves, answer directly.
        const INLINE_RUN: usize = 8;
        if q.run.len() <= INLINE_RUN {
            for &(op_index, u, v) in &q.run {
                results.push(QueryResult {
                    op_index,
                    u,
                    v,
                    connected: self.hdt.connected(u, v),
                });
            }
            q.run.clear();
            return;
        }

        // Coalesce repeated pairs: one read per distinct (normalized) pair.
        q.unique.clear();
        q.refs.clear();
        q.pair_index.clear();
        let (unique, pair_index) = (&mut q.unique, &mut q.pair_index);
        q.refs.extend(q.run.iter().map(|&(_, u, v)| {
            let key = (u.min(v), u.max(v));
            *pair_index.entry(key).or_insert_with(|| {
                unique.push(key);
                unique.len() - 1
            })
        }));
        self.counters
            .coalesced_queries
            .fetch_add((q.run.len() - q.unique.len()) as u64, Ordering::Relaxed);

        // Fan out only when every spawned thread gets a chunk big enough to
        // amortize its spawn (a scoped spawn costs more than a few hundred
        // lock-free reads).
        let fanout = self
            .query_threads
            .min(q.unique.len() / PARALLEL_QUERY_CHUNK)
            .max(1);
        if fanout > 1 {
            q.answers.clear();
            q.answers.resize(q.unique.len(), false);
            let chunk = q.unique.len().div_ceil(fanout);
            std::thread::scope(|s| {
                for (pairs, out) in q.unique.chunks(chunk).zip(q.answers.chunks_mut(chunk)) {
                    let hdt = &self.hdt;
                    s.spawn(move || {
                        // `connected_many` resolves each distinct endpoint's
                        // root once and revalidates per pair, so a chunk full
                        // of repeated hot roots never re-climbs — and the
                        // hints it installs are shared by every other chunk
                        // of this (update-quiescent) batch.
                        let mut answers = Vec::with_capacity(pairs.len());
                        hdt.connected_many(pairs, &mut answers);
                        out.copy_from_slice(&answers);
                    });
                }
            });
        } else {
            q.answers.clear();
            self.hdt.connected_many(&q.unique, &mut q.answers);
        }

        for (&(op_index, u, v), &uidx) in q.run.iter().zip(&q.refs) {
            results.push(QueryResult {
                op_index,
                u,
                v,
                connected: q.answers[uidx],
            });
        }
        q.run.clear();
    }
}

impl<F: DynamicForest> BatchEngine<F> {
    // ----- the typed (fallible) doors ----------------------------------------

    /// [`DynamicConnectivity::add_edge`] with engine faults surfaced as
    /// values instead of panics.
    pub fn try_add_edge(&self, u: u32, v: u32) -> Result<(), EngineError> {
        if u == v {
            return Ok(());
        }
        self.execute_op(BatchOp::Add(u, v)).map(|_| ())
    }

    /// [`DynamicConnectivity::remove_edge`] with engine faults surfaced as
    /// values instead of panics.
    pub fn try_remove_edge(&self, u: u32, v: u32) -> Result<(), EngineError> {
        if u == v {
            return Ok(());
        }
        self.execute_op(BatchOp::Remove(u, v)).map(|_| ())
    }

    /// [`DynamicConnectivity::connected`] with engine faults surfaced as
    /// values instead of panics.
    pub fn try_connected(&self, u: u32, v: u32) -> Result<bool, EngineError> {
        if u == v {
            return Ok(true);
        }
        Ok(self
            .execute_op(BatchOp::Query(u, v))?
            .expect("a query always resolves to an answer"))
    }

    /// [`BatchConnectivity::apply_batch`] with engine faults surfaced as
    /// values instead of panics. Never returns [`EngineError::Timeout`]:
    /// the bulk door takes the leader lock blocking.
    pub fn try_apply_batch(&self, ops: &[BatchOp]) -> Result<Vec<QueryResult>, EngineError> {
        if self.is_poisoned() {
            return Err(EngineError::Poisoned);
        }
        // The bulk door takes the same leader lock as the adapter batches —
        // one combined writer at a time. The lock is held for the *whole*
        // bulk batch, so adapter callers wait out the full batch; bulk batch
        // size is therefore also the adapter's worst-case latency knob.
        self.leader.lock();
        if self.is_poisoned() {
            // Poisoned while we queued for leadership.
            self.leader.unlock();
            return Err(EngineError::Poisoned);
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| self.run_bulk_batch(ops)));
        let result = match outcome {
            Ok(results) => Ok(results),
            Err(payload) => {
                self.poison("bulk batch leader panicked", payload.as_ref());
                Err(EngineError::Poisoned)
            }
        };
        self.leader.unlock();
        result
    }

    /// The bulk batch body; runs behind [`BatchEngine::try_apply_batch`]'s
    /// unwind boundary with the leader lock held.
    fn run_bulk_batch(&self, ops: &[BatchOp]) -> Vec<QueryResult> {
        self.counters.bulk_batches.fetch_add(1, Ordering::Relaxed);
        // SAFETY: leader lock held — exclusive access to the scratch state.
        let scratch = unsafe { &mut *self.scratch.get() };
        scratch.plan.clear();
        scratch.queries.run.clear();
        let mut results = Vec::new();

        // Split the batch into maximal update runs and query runs: an update
        // run is compacted and applied as one combined pass before the next
        // query run is answered, which is exactly sequential equivalence.
        for (op_index, op) in ops.iter().enumerate() {
            match *op {
                BatchOp::Add(u, v) => {
                    self.answer_query_run(&mut scratch.queries, &mut results);
                    scratch.plan.record(true, u, v);
                }
                BatchOp::Remove(u, v) => {
                    self.answer_query_run(&mut scratch.queries, &mut results);
                    scratch.plan.record(false, u, v);
                }
                BatchOp::Query(u, v) => {
                    self.flush_plan(
                        &mut scratch.plan,
                        &mut scratch.adds,
                        &mut scratch.removes,
                        &mut scratch.rejected,
                    );
                    scratch.queries.run.push((op_index, u, v));
                }
            }
        }
        self.flush_plan(
            &mut scratch.plan,
            &mut scratch.adds,
            &mut scratch.removes,
            &mut scratch.rejected,
        );
        self.answer_query_run(&mut scratch.queries, &mut results);
        results
    }
}

impl BatchEngine {
    /// Spawns a [`dc_faults::Watchdog`] wired to this engine (ETT backend):
    ///
    /// * **`batch-leader`** — active while the leader lock is held; progress
    ///   is the batch count. A leadership that holds the lock without
    ///   finishing a batch for `stall_ticks` probe intervals flags
    ///   [`dc_obs::Gauge::WatchdogStalledProbes`] and logs a
    ///   [`dc_obs::EventKind::WatchdogStall`] flight event.
    /// * **`ett-epoch`** — active while any reader pin is outstanding;
    ///   progress is the reclamation epoch. A pin that wedges the epoch
    ///   (a parked reader blocking every grace period) flags the same way.
    ///
    /// The handle stops and joins the thread on drop. Purely observational:
    /// the watchdog never intervenes. (Other backends: build a
    /// [`dc_faults::Watchdog`] by hand from whatever probes fit.)
    pub fn spawn_watchdog(
        self: &Arc<Self>,
        interval: Duration,
        stall_ticks: u32,
    ) -> dc_faults::WatchdogHandle {
        let leader = Arc::downgrade(self);
        let epoch = Arc::downgrade(self);
        dc_faults::Watchdog::new(interval, stall_ticks)
            .probe(dc_faults::Probe::new("batch-leader", move || {
                let engine = leader.upgrade()?;
                if !engine.leader.is_locked() {
                    return None;
                }
                Some(
                    engine.counters.batches.load(Ordering::Relaxed)
                        + engine.counters.bulk_batches.load(Ordering::Relaxed),
                )
            }))
            .probe(dc_faults::Probe::new("ett-epoch", move || {
                let engine = epoch.upgrade()?;
                let domain = engine.hdt.forest(0).epoch_domain();
                if domain.active_pins() == 0 {
                    return None;
                }
                Some(domain.current_epoch())
            }))
            .spawn()
    }
}

impl<F: DynamicForest> DynamicConnectivity for BatchEngine<F> {
    fn add_edge(&self, u: u32, v: u32) {
        if let Err(e) = self.try_add_edge(u, v) {
            panic!("BatchEngine::add_edge: {e} (use the try_* doors to handle engine faults)");
        }
    }

    fn remove_edge(&self, u: u32, v: u32) {
        if let Err(e) = self.try_remove_edge(u, v) {
            panic!("BatchEngine::remove_edge: {e} (use the try_* doors to handle engine faults)");
        }
    }

    fn connected(&self, u: u32, v: u32) -> bool {
        match self.try_connected(u, v) {
            Ok(answer) => answer,
            Err(e) => {
                panic!("BatchEngine::connected: {e} (use the try_* doors to handle engine faults)")
            }
        }
    }

    fn num_vertices(&self) -> usize {
        self.hdt.num_vertices()
    }

    fn read_hint_counters(&self) -> Option<(u64, u64)> {
        let stats = self.hdt.stats();
        Some((stats.read_hint_hits, stats.read_hint_misses))
    }
}

impl<F: DynamicForest> BatchConnectivity for BatchEngine<F> {
    fn apply_batch(&self, ops: &[BatchOp]) -> Vec<QueryResult> {
        match self.try_apply_batch(ops) {
            Ok(results) => results,
            Err(e) => {
                panic!(
                    "BatchEngine::apply_batch: {e} (use try_apply_batch to handle engine faults)"
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynconn::sequential_apply_batch;
    use dynconn::RecomputeOracle;
    use std::sync::Arc;

    #[test]
    fn single_op_adapter_matches_basic_semantics() {
        let engine = BatchEngine::new(8);
        assert!(!engine.connected(0, 3));
        engine.add_edge(0, 1);
        engine.add_edge(1, 2);
        engine.add_edge(2, 3);
        assert!(engine.connected(0, 3));
        engine.remove_edge(1, 2);
        assert!(!engine.connected(0, 3));
        assert!(engine.connected(0, 1));
        engine.hdt().validate();
        let stats = engine.stats();
        assert!(stats.batches >= 4);
        assert_eq!(stats.submitted_updates, 4);
        assert_eq!(stats.applied_updates, 4);
    }

    #[test]
    fn bulk_batch_matches_sequential_reference() {
        let engine = BatchEngine::new(6);
        let oracle = RecomputeOracle::new(6);
        let ops = vec![
            BatchOp::Query(0, 2),
            BatchOp::Add(0, 1),
            BatchOp::Add(1, 2),
            BatchOp::Query(0, 2),
            BatchOp::Add(3, 4),
            BatchOp::Remove(0, 1),
            BatchOp::Query(0, 2),
            BatchOp::Query(1, 2),
            BatchOp::Add(0, 1),
            BatchOp::Remove(0, 1),
            BatchOp::Query(0, 1),
        ];
        assert_eq!(
            engine.apply_batch(&ops),
            sequential_apply_batch(&oracle, &ops)
        );
        engine.hdt().validate();
    }

    #[test]
    fn annihilation_cancels_churn_before_the_tree() {
        let engine = BatchEngine::new(4);
        // 100 add/remove pairs of the same absent edge in one batch: net
        // nothing may reach the HDT.
        let mut ops = Vec::new();
        for _ in 0..100 {
            ops.push(BatchOp::Add(0, 1));
            ops.push(BatchOp::Remove(0, 1));
        }
        let results = engine.apply_batch(&ops);
        assert!(results.is_empty());
        let stats = engine.stats();
        assert_eq!(stats.submitted_updates, 200);
        assert_eq!(stats.applied_updates, 0);
        assert!(stats.compaction_ratio() < 1e-9);
        assert_eq!(
            engine.hdt().stats().additions,
            0,
            "the tree was never touched"
        );
    }

    #[test]
    fn repeated_queries_coalesce_in_bulk_batches() {
        let engine = BatchEngine::new(4);
        let mut ops = vec![BatchOp::Add(0, 1)];
        for _ in 0..50 {
            ops.push(BatchOp::Query(0, 1));
            ops.push(BatchOp::Query(1, 0)); // same pair, other orientation
        }
        let results = engine.apply_batch(&ops);
        assert_eq!(results.len(), 100);
        assert!(results.iter().all(|r| r.connected));
        assert_eq!(engine.stats().coalesced_queries, 99);
    }

    #[test]
    fn concurrent_adapter_threads_stay_consistent() {
        let engine = Arc::new(BatchEngine::new(64));
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let engine = Arc::clone(&engine);
                s.spawn(move || {
                    let base = t * 16;
                    for i in 0..15 {
                        engine.add_edge(base + i, base + i + 1);
                    }
                    assert!(engine.connected(base, base + 15));
                    engine.remove_edge(base + 7, base + 8);
                    assert!(!engine.connected(base, base + 15));
                });
            }
        });
        assert!(!engine.connected(0, 63));
        assert!(engine.connected(0, 7));
        engine.hdt().validate();
    }

    #[test]
    fn bulk_and_adapter_doors_interleave() {
        let engine = Arc::new(BatchEngine::new(32));
        std::thread::scope(|s| {
            let bulk = Arc::clone(&engine);
            s.spawn(move || {
                for _ in 0..50 {
                    let ops = vec![
                        BatchOp::Add(0, 1),
                        BatchOp::Query(0, 1),
                        BatchOp::Remove(0, 1),
                        BatchOp::Query(0, 1),
                    ];
                    let results = bulk.apply_batch(&ops);
                    assert!(results[0].connected);
                    assert!(!results[1].connected);
                }
            });
            let single = Arc::clone(&engine);
            s.spawn(move || {
                for _ in 0..50 {
                    single.add_edge(10, 11);
                    assert!(single.connected(10, 11));
                    single.remove_edge(10, 11);
                    assert!(!single.connected(10, 11));
                }
            });
        });
        engine.hdt().validate();
    }

    #[test]
    fn lct_backed_engine_matches_sequential_reference() {
        let engine = BatchEngine::<dc_ett::LctForest>::new_on(6);
        let oracle = RecomputeOracle::new(6);
        let ops = vec![
            BatchOp::Query(0, 2),
            BatchOp::Add(0, 1),
            BatchOp::Add(1, 2),
            BatchOp::Query(0, 2),
            BatchOp::Remove(0, 1),
            BatchOp::Query(0, 2),
            BatchOp::Add(0, 1),
            BatchOp::Remove(1, 2),
            BatchOp::Query(0, 1),
            BatchOp::Query(0, 2),
        ];
        assert_eq!(
            engine.apply_batch(&ops),
            sequential_apply_batch(&oracle, &ops)
        );
        engine.hdt().validate();
    }

    #[test]
    fn leader_panic_poisons_instead_of_hanging() {
        let _guard = dc_faults::test_guard();
        let mut engine = BatchEngine::new(8);
        engine.set_commit_hook(Box::new(|_, _, _| panic!("hook exploded")));
        let engine = Arc::new(engine);
        // The first update batch trips the hook on our own leadership; the
        // unwind boundary converts it into the typed poison.
        assert_eq!(engine.try_add_edge(0, 1), Err(EngineError::Poisoned));
        assert!(engine.is_poisoned());
        let note = engine.poison_note().expect("poison note recorded");
        assert!(note.contains("hook exploded"), "{note}");
        // Every door fails fast, from any thread.
        assert_eq!(engine.try_remove_edge(0, 1), Err(EngineError::Poisoned));
        assert_eq!(engine.try_connected(0, 1), Err(EngineError::Poisoned));
        assert_eq!(
            engine.try_apply_batch(&[BatchOp::Add(2, 3)]),
            Err(EngineError::Poisoned)
        );
        let remote = Arc::clone(&engine);
        std::thread::spawn(move || {
            assert_eq!(remote.try_add_edge(4, 5), Err(EngineError::Poisoned));
        })
        .join()
        .unwrap();
        // The infallible trait doors panic on the caller's thread instead.
        let trait_door = catch_unwind(AssertUnwindSafe(|| engine.add_edge(6, 7)));
        assert!(trait_door.is_err());
    }

    #[test]
    fn poison_releases_every_blocked_waiter() {
        let _guard = dc_faults::test_guard();
        let mut engine = BatchEngine::new(64);
        engine.set_commit_hook(Box::new(|_, _, _| {
            // Let waiters pile up behind this leadership before dying.
            std::thread::sleep(Duration::from_millis(50));
            panic!("hook exploded mid-batch");
        }));
        let engine = Arc::new(engine);
        let mut outcomes = Vec::new();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..6u32 {
                let engine = Arc::clone(&engine);
                handles.push(s.spawn(move || engine.try_add_edge(t * 2, t * 2 + 1)));
            }
            for h in handles {
                outcomes.push(h.join().unwrap());
            }
        });
        // No waiter hung (the scope joined) and no waiter was acked: the
        // first leadership panicked before completing any slot, later
        // publishers saw the poison flag or were swept.
        assert!(engine.is_poisoned());
        assert!(outcomes.iter().all(|r| *r == Err(EngineError::Poisoned)));
    }

    #[test]
    fn chaos_injection_panics_and_poisons_before_apply() {
        let _guard = dc_faults::test_guard();
        dc_faults::install(Arc::new(dc_faults::ChaosSchedule::from_config(
            dc_faults::ChaosConfig {
                horizon: 1,
                faults_per_point: {
                    let mut f = [0; dc_faults::InjectionPoint::COUNT];
                    f[InjectionPoint::LeaderPanicBeforeApply as usize] = 1;
                    f
                },
                ..Default::default()
            },
        )));
        let engine = BatchEngine::new(8);
        let result = engine.try_add_edge(0, 1);
        dc_faults::uninstall();
        assert_eq!(result, Err(EngineError::Poisoned));
        assert!(engine.is_poisoned());
        let note = engine.poison_note().unwrap();
        assert!(note.contains("chaos injection"), "{note}");
        // The panic fired before the apply: the structure never saw the add.
        assert!(!engine.hdt().has_edge(0, 1));
    }

    #[test]
    fn bounded_wait_times_out_under_a_stalled_leader() {
        let _guard = dc_faults::test_guard();
        waitstats::set_enabled(true);
        waitstats::reset();
        let mut engine = BatchEngine::new(8);
        engine.set_wait_policy(WaitPolicy::with_deadline(Duration::from_millis(25)));
        let engine = Arc::new(engine);
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::scope(|s| {
            let staller = Arc::clone(&engine);
            s.spawn(move || {
                staller.with_exclusive(|_| {
                    tx.send(()).unwrap();
                    std::thread::sleep(Duration::from_millis(200));
                });
            });
            rx.recv().unwrap();
            let t0 = std::time::Instant::now();
            assert_eq!(engine.try_add_edge(0, 1), Err(EngineError::Timeout));
            assert!(
                t0.elapsed() < Duration::from_millis(190),
                "the deadline must fire while the leader is still stalled"
            );
        });
        // The parked wait was accounted (satellite: the ladder feeds the
        // waitstats active-time-rate statistic).
        assert!(waitstats::wait_events() > 0);
        assert!(waitstats::total_wait_nanos() > 0);
        waitstats::set_enabled(false);
        // The withdrawn op had no effect; the engine is healthy.
        assert!(!engine.is_poisoned());
        assert!(!engine.connected(0, 1));
    }

    #[test]
    fn capacity_rejected_adds_are_drained_not_applied() {
        let _guard = dc_faults::test_guard();
        let engine = BatchEngine::new(8);
        engine.add_edge(0, 1);
        // Cap the arena: the next spanning link's bump allocation must fail.
        engine.hdt().forest(0).set_node_limit(Some(0));
        engine.add_edge(2, 3); // trait door still acks; rejection is out-of-band
        assert!(!engine.connected(2, 3));
        assert!(
            !engine.is_poisoned(),
            "capacity is a rejection, not a fault"
        );
        let stats = engine.stats();
        assert_eq!(stats.rejected_updates, 1);
        assert_eq!(engine.drain_rejected(), vec![dc_graph::Edge::new(2, 3)]);
        assert!(
            engine.drain_rejected().is_empty(),
            "drain empties the buffer"
        );
        // Raising the cap heals the path; nothing was poisoned or lost.
        engine.hdt().forest(0).set_node_limit(None);
        engine.add_edge(2, 3);
        assert!(engine.connected(2, 3));
    }

    #[test]
    fn rejected_adds_never_reach_the_commit_hook() {
        let _guard = dc_faults::test_guard();
        let logged: Arc<std::sync::Mutex<Vec<Edge>>> = Arc::default();
        let mut engine = BatchEngine::new(8);
        let sink = Arc::clone(&logged);
        engine.set_commit_hook(Box::new(move |_, adds, _| {
            sink.lock().unwrap().extend_from_slice(adds);
        }));
        engine.hdt().forest(0).set_node_limit(Some(0));
        // One rejected spanning add and one applied non-spanning no-op
        // batch: only applied updates may reach the log.
        let results = engine
            .try_apply_batch(&[BatchOp::Add(0, 1), BatchOp::Query(0, 1)])
            .unwrap();
        assert!(!results[0].connected);
        assert_eq!(engine.stats().rejected_updates, 1);
        assert!(logged.lock().unwrap().is_empty());
    }

    #[test]
    fn watchdog_flags_a_stuck_leader() {
        let engine = Arc::new(BatchEngine::new(8));
        let watchdog = engine.spawn_watchdog(Duration::from_millis(5), 3);
        engine.with_exclusive(|_| std::thread::sleep(Duration::from_millis(120)));
        let stalls = watchdog.stall_count();
        watchdog.stop();
        assert!(
            stalls >= 1,
            "holding the leader lock for 120ms against 5ms probes must flag a stall"
        );
    }

    #[test]
    fn large_query_runs_fan_out_in_parallel() {
        let engine = BatchEngine::with_options(1000, 16, 4);
        let mut ops: Vec<BatchOp> = (0..999).map(|i| BatchOp::Add(i, i + 1)).collect();
        for i in 0..1000 {
            ops.push(BatchOp::Query(0, i));
        }
        let results = engine.apply_batch(&ops);
        assert_eq!(results.len(), 1000);
        assert!(results.iter().all(|r| r.connected));
    }
}
